package power

import (
	"math"
	"testing"

	"viyojit/internal/sim"
)

func TestFlushWattsScalesWithDRAM(t *testing.T) {
	m := Default()
	small := m.FlushWatts(1 << 30) // 1 GiB
	large := m.FlushWatts(4 << 40) // 4 TiB
	if large <= small {
		t.Fatalf("flush watts did not grow with DRAM: %v vs %v", small, large)
	}
}

func TestDefaultModelMatchesPaperExample(t *testing.T) {
	// Paper §2.2: 4 TB DRAM server, "a modest 300W server power" ⇒ the
	// default model should land in that neighbourhood.
	w := Default().FlushWatts(4 << 40)
	if w < 250 || w > 350 {
		t.Fatalf("4 TB flush watts = %v, want ~300", w)
	}
}

func TestFlushTime(t *testing.T) {
	// 4 TB at 4 GB/s = 1024 s ≈ 17 min (paper §8).
	d := FlushTime(4<<40, 4<<30)
	if d != 1024*sim.Second {
		t.Fatalf("flush time = %v, want 1024s", d)
	}
}

func TestFlushTimePanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero bandwidth")
		}
	}()
	FlushTime(1, 0)
}

func TestFlushEnergyMatchesPaperExample(t *testing.T) {
	// Paper §2.2: backing up 4 TB at 4 GB/s with ~300 W needs ~300 KJ.
	j := Default().FlushEnergyJoules(4<<40, 4<<30, 4<<40)
	if j < 250e3 || j > 350e3 {
		t.Fatalf("flush energy = %v J, want ~300 KJ", j)
	}
}

func TestSustainableBytesInverts(t *testing.T) {
	m := Default()
	const bw = 4 << 30
	const dram = 4 << 40
	flushBytes := int64(1 << 38)
	j := m.FlushEnergyJoules(flushBytes, bw, dram)
	back := m.SustainableBytes(j, bw, dram)
	if math.Abs(float64(back-flushBytes)) > float64(flushBytes)/1e6 {
		t.Fatalf("SustainableBytes(%v J) = %d, want ~%d", j, back, flushBytes)
	}
}

func TestSustainableBytesEdgeCases(t *testing.T) {
	m := Default()
	if m.SustainableBytes(0, 4<<30, 1<<30) != 0 {
		t.Fatal("zero joules should sustain zero bytes")
	}
	if m.SustainableBytes(-5, 4<<30, 1<<30) != 0 {
		t.Fatal("negative joules should sustain zero bytes")
	}
}
