// Package power models the server's power draw during a backup flush. The
// dirty budget is derived from it: battery joules divided by flush-time
// watts gives the time the server can run after a power loss, and that
// time multiplied by a conservative SSD write bandwidth gives the number
// of bytes — hence pages — that may be dirty (paper §5.1).
package power

import (
	"fmt"

	"viyojit/internal/sim"
)

// Model is the component power model. Watts are drawn while the server is
// flushing NV-DRAM to the SSD after a power-loss event.
type Model struct {
	// BaseWatts covers the board, fans, and power-conversion overhead.
	BaseWatts float64
	// CPUWatts is the processor draw during the flush (the flush loop is
	// memory-bound, so this is below peak CPU power).
	CPUWatts float64
	// DRAMWattsPerGiB is DRAM refresh+access power per GiB installed.
	DRAMWattsPerGiB float64
	// SSDWatts is the backing device's active-write draw.
	SSDWatts float64
}

// Default returns a model calibrated so a 4 TB-DRAM server draws roughly
// the paper's "modest 300 W" during a flush (§2.2's worked example).
func Default() Model {
	return Model{
		BaseWatts:       60,
		CPUWatts:        90,
		DRAMWattsPerGiB: 0.03,
		SSDWatts:        25,
	}
}

// FlushWatts returns total draw for a server with dramBytes of DRAM
// installed.
func (m Model) FlushWatts(dramBytes int64) float64 {
	gib := float64(dramBytes) / (1 << 30)
	return m.BaseWatts + m.CPUWatts + m.SSDWatts + m.DRAMWattsPerGiB*gib
}

// FlushTime returns how long writing flushBytes at writeBandwidth
// bytes/sec takes.
func FlushTime(flushBytes, writeBandwidth int64) sim.Duration {
	if writeBandwidth <= 0 {
		panic(fmt.Sprintf("power: non-positive write bandwidth %d", writeBandwidth))
	}
	// Float math avoids int64 overflow for terabyte-scale flushes.
	seconds := float64(flushBytes) / float64(writeBandwidth)
	return sim.Duration(seconds * float64(sim.Second))
}

// FlushEnergyJoules returns the energy needed to keep a server with
// dramBytes of DRAM running while flushBytes are written to the SSD at
// writeBandwidth bytes/sec. This is the quantity a full-battery NV-DRAM
// system must provision for the entire DRAM, and that Viyojit provisions
// only for the dirty budget.
func (m Model) FlushEnergyJoules(flushBytes, writeBandwidth, dramBytes int64) float64 {
	return m.FlushWatts(dramBytes) * FlushTime(flushBytes, writeBandwidth).Seconds()
}

// SustainableBytes returns how many bytes can be flushed with joules of
// energy available: the inverse of FlushEnergyJoules.
func (m Model) SustainableBytes(joules float64, writeBandwidth, dramBytes int64) int64 {
	watts := m.FlushWatts(dramBytes)
	if watts <= 0 || joules <= 0 {
		return 0
	}
	seconds := joules / watts
	return int64(seconds * float64(writeBandwidth))
}
