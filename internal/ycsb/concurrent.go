package ycsb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"viyojit/internal/dist"
	"viyojit/internal/serve"
	"viyojit/internal/sim"
)

// ConcurrentConfig parameterises a concurrent-client run against the
// serving front-end (internal/serve). The embedded Config supplies the
// workload, record/operation counts, and seed; pacing and deadlines are
// the concurrent knobs.
type ConcurrentConfig struct {
	Config
	// Clients is the number of client goroutines; 0 selects 4.
	Clients int
	// Deadline is the per-request virtual-time deadline (queue wait +
	// predicted clean-stall + service); 0 means none.
	Deadline sim.Duration
	// OfferedLoad is the aggregate open-loop arrival rate in operations
	// per virtual second across all clients. 0 runs closed-loop: each
	// client issues its next op when the previous resolves. In open
	// loop, arrivals are independent of completions (a slow system does
	// NOT slow the clients down), which is what exposes overload.
	OfferedLoad float64
	// LowPriorityFraction of requests are tagged PriorityLow, the class
	// admission sheds first; the rest are PriorityNormal.
	LowPriorityFraction float64
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	c.Config = c.Config.withDefaults()
	if c.Clients == 0 {
		c.Clients = 4
	}
	return c
}

// ConcurrentResult aggregates a concurrent run: goodput, the shed
// breakdown by typed error, and latency quantiles of the operations
// that completed.
type ConcurrentResult struct {
	Workload   string
	Clients    int
	Offered    float64 // ops per virtual second; 0 = closed loop
	Operations int     // attempted

	Completed    int
	ShedOverload int
	ShedDeadline int
	ShedReadOnly int
	Cancelled    int
	OtherErrors  int

	Elapsed sim.Duration
	// Goodput is completed operations per virtual second — the metric
	// that must plateau (not collapse) past saturation.
	Goodput          float64
	P50, P99         sim.Duration // latency of completed ops
	MaxQueueObserved int
}

// Shed returns the total typed rejections.
func (r ConcurrentResult) Shed() int { return r.ShedOverload + r.ShedDeadline + r.ShedReadOnly }

// GoodputKOps returns goodput in K-ops/sec.
func (r ConcurrentResult) GoodputKOps() float64 { return r.Goodput / 1000 }

// clientState is one goroutine's accounting; sub-goroutines spawned for
// open-loop arrivals share it under mu.
type clientState struct {
	mu        sync.Mutex
	hist      Histogram
	completed int
	overload  int
	deadline  int
	readonly  int
	cancelled int
	other     int
}

func (c *clientState) record(res serve.Result, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err == nil:
		c.completed++
		c.hist.Record(res.Latency)
	case errors.Is(err, serve.ErrOverloaded):
		c.overload++
	case errors.Is(err, serve.ErrDeadlineExceeded):
		c.deadline++
	case errors.Is(err, serve.ErrReadOnly):
		c.readonly++
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		c.cancelled++
	default:
		c.other++
	}
}

// RunConcurrent drives the serving front-end with cfg.Clients client
// goroutines. The store behind srv must already be loaded (Load) and
// srv must be started. Closed-loop runs (OfferedLoad 0) measure the
// system's saturation throughput; open-loop runs measure goodput and
// shedding at a fixed offered load.
func RunConcurrent(cfg ConcurrentConfig, srv *serve.Server) (ConcurrentResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload.Name == WorkloadE.Name {
		return ConcurrentResult{}, ErrScansUnsupported
	}
	if err := cfg.Workload.Validate(); err != nil {
		return ConcurrentResult{}, err
	}
	if cfg.OperationCount <= 0 {
		return ConcurrentResult{}, fmt.Errorf("ycsb: OperationCount %d must be positive", cfg.OperationCount)
	}
	if cfg.OfferedLoad < 0 {
		return ConcurrentResult{}, fmt.Errorf("ycsb: OfferedLoad %v must be non-negative", cfg.OfferedLoad)
	}

	records := int64(cfg.RecordCount)
	var nextInsert atomic.Int64
	nextInsert.Store(records)
	var version atomic.Uint64

	// Per-client arrival period for open loop; clients are staggered a
	// fraction of a period apart so arrivals interleave.
	var interarrival sim.Duration
	if cfg.OfferedLoad > 0 {
		interarrival = sim.Duration(float64(sim.Second) * float64(cfg.Clients) / cfg.OfferedLoad)
		if interarrival < 1 {
			interarrival = 1
		}
	}

	rootRNG := sim.NewRNG(cfg.Seed)
	states := make([]*clientState, cfg.Clients)
	clientRNGs := make([]*sim.RNG, cfg.Clients)
	for i := range states {
		states[i] = &clientState{}
		clientRNGs[i] = rootRNG.Fork()
	}

	startNow := srv.Now()
	ctx := context.Background()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		nOps := cfg.OperationCount / cfg.Clients
		if c < cfg.OperationCount%cfg.Clients {
			nOps++
		}
		if nOps == 0 {
			continue
		}
		wg.Add(1)
		go func(c, nOps int) {
			defer wg.Done()
			st := states[c]
			rng := clientRNGs[c]
			chooser, latest, err := newChooser(rng, cfg.Workload, records)
			if err != nil {
				st.record(serve.Result{}, err)
				return
			}
			ops := &opChooser{rng: rng.Fork(), w: cfg.Workload}
			prioRNG := rng.Fork()

			var arrivals sync.WaitGroup
			next := startNow.Add(sim.Duration(int64(interarrival) * int64(c) / int64(cfg.Clients)))
			for op := 0; op < nOps; op++ {
				if interarrival > 0 {
					if err := srv.WaitUntil(next); err != nil {
						st.record(serve.Result{}, err)
						break
					}
					next = next.Add(interarrival)
				}
				prio := serve.PriorityNormal
				if cfg.LowPriorityFraction > 0 && prioRNG.Float64() < cfg.LowPriorityFraction {
					prio = serve.PriorityLow
				}
				req := buildOp(cfg, ops.next(), chooser, latest, &nextInsert, &version)
				req.Priority = prio
				req.Timeout = cfg.Deadline
				if interarrival > 0 {
					// Open loop: the arrival does not wait for the
					// completion, but admission must happen HERE, on the
					// pacing goroutine — if the enqueue raced on a spawned
					// goroutine, an idle dispatch loop would advance
					// virtual time past the next arrival target first,
					// bunching the whole schedule into bursts. Only the
					// completion wait moves off-goroutine, so the spawn
					// count is bounded by MaxQueue + in-flight.
					h, err := srv.SubmitAsync(req)
					if err != nil {
						st.record(serve.Result{}, err)
						if errors.Is(err, serve.ErrClosed) {
							break
						}
						continue
					}
					arrivals.Add(1)
					go func(h *serve.Handle) {
						defer arrivals.Done()
						res, err := h.Wait(ctx)
						st.record(res, err)
					}(h)
				} else {
					res, err := srv.Submit(ctx, req)
					st.record(res, err)
					if errors.Is(err, serve.ErrClosed) {
						break
					}
				}
			}
			arrivals.Wait()
		}(c, nOps)
	}
	wg.Wait()

	res := ConcurrentResult{
		Workload:   cfg.Workload.Name,
		Clients:    cfg.Clients,
		Offered:    cfg.OfferedLoad,
		Operations: cfg.OperationCount,
		Elapsed:    srv.Now().Sub(startNow),
	}
	merged := &Histogram{}
	for _, st := range states {
		st.mu.Lock()
		res.Completed += st.completed
		res.ShedOverload += st.overload
		res.ShedDeadline += st.deadline
		res.ShedReadOnly += st.readonly
		res.Cancelled += st.cancelled
		res.OtherErrors += st.other
		merged.Merge(&st.hist)
		st.mu.Unlock()
	}
	if res.Elapsed > 0 {
		res.Goodput = float64(res.Completed) / res.Elapsed.Seconds()
	}
	res.P50 = merged.Quantile(0.50)
	res.P99 = merged.Quantile(0.99)
	res.MaxQueueObserved = srv.Stats().MaxQueueObserved
	return res, nil
}

// buildOp translates one YCSB operation into a serve.Request. Key and
// value bytes are materialised on the client goroutine; the Op closure
// only touches the store (dispatch-goroutine state).
func buildOp(cfg ConcurrentConfig, kind OpKind, chooser dist.Generator, latest *dist.Latest, nextInsert *atomic.Int64, version *atomic.Uint64) serve.Request {
	switch kind {
	case OpRead:
		k := key(chooser.Next())
		return serve.Request{Op: func(e serve.Exec) (any, error) {
			_, _, err := e.Store.Get(k)
			return nil, err
		}}
	case OpUpdate:
		rec := chooser.Next()
		v := valueFor(make([]byte, cfg.ValueSize), rec, version.Add(1))
		k := key(rec)
		return serve.Request{Write: true, Op: func(e serve.Exec) (any, error) {
			return nil, e.Store.Put(k, v)
		}}
	case OpInsert:
		rec := nextInsert.Add(1) - 1
		v := valueFor(make([]byte, cfg.ValueSize), rec, 0)
		k := key(rec)
		if latest != nil {
			latest.AddItem()
		}
		return serve.Request{Write: true, Op: func(e serve.Exec) (any, error) {
			return nil, e.Store.Put(k, v)
		}}
	default: // OpReadModifyWrite
		rec := chooser.Next()
		v := valueFor(make([]byte, cfg.ValueSize), rec, version.Add(1))
		k := key(rec)
		return serve.Request{Write: true, Op: func(e serve.Exec) (any, error) {
			_, err := e.Store.ReadModifyWrite(k, func([]byte) []byte { return v })
			return nil, err
		}}
	}
}
