package ycsb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"viyojit/internal/dist"
	"viyojit/internal/kvstore"
	"viyojit/internal/sim"
)

// Config parameterises one benchmark execution.
type Config struct {
	Workload Workload
	// RecordCount is the number of records loaded before the run phase
	// (the paper's "initial dataset").
	RecordCount int
	// OperationCount is the number of run-phase operations.
	OperationCount int
	// ValueSize is the record value size in bytes (YCSB default is 10
	// fields × 100 B; scaled deployments use smaller values — the
	// harness picks).
	ValueSize int
	// Seed makes the run deterministic.
	Seed uint64
	// OpServiceTime is the fixed request-processing cost charged per
	// operation, modelling the client/server stack around the store
	// (network, parsing, dispatch). 0 selects 20 µs, which puts baseline
	// throughput in the paper's tens-of-K-ops/s range.
	OpServiceTime sim.Duration
}

func (c Config) withDefaults() Config {
	if c.OpServiceTime == 0 {
		c.OpServiceTime = 20 * sim.Microsecond
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	return c
}

// Target is the system under test: a KV store plus the clock it runs on
// and a pump that delivers pending background events (epoch ticks, IO
// completions). The same Target shape drives both the Viyojit-managed
// store and the full-battery baseline.
type Target struct {
	Store *kvstore.Store
	Clock *sim.Clock
	Pump  func()
}

// Result is the outcome of one run.
type Result struct {
	Workload   string
	Operations int
	Elapsed    sim.Duration
	// Throughput in operations per (virtual) second.
	Throughput float64
	// Latency histograms per operation kind (nil slots for kinds the
	// workload never issued).
	Latency [numOpKinds]*Histogram
}

// ThroughputKOps returns throughput in K-ops/sec, the unit of Fig 7.
func (r Result) ThroughputKOps() float64 { return r.Throughput / 1000 }

// LatencyOf returns the histogram for kind (empty if unused).
func (r Result) LatencyOf(kind OpKind) *Histogram {
	if r.Latency[kind] == nil {
		return &Histogram{}
	}
	return r.Latency[kind]
}

// key builds the YCSB-style key for record i.
func key(i int64) []byte {
	return []byte(fmt.Sprintf("user%012d", i))
}

// valueFor builds a deterministic value: an 8-byte stamp followed by a
// fixed pattern. Distinct per (record, version) so durability checks can
// distinguish versions, cheap enough to build per op.
func valueFor(buf []byte, record int64, version uint64) []byte {
	if len(buf) >= 16 {
		binary.LittleEndian.PutUint64(buf[0:], uint64(record))
		binary.LittleEndian.PutUint64(buf[8:], version)
		for i := 16; i < len(buf); i++ {
			buf[i] = byte(0x40 + i%32)
		}
	} else {
		for i := range buf {
			buf[i] = byte(record) + byte(version) + byte(i)
		}
	}
	return buf
}

// Load inserts cfg.RecordCount records — the load phase that builds the
// paper's initial heap.
func Load(cfg Config, target Target) error {
	cfg = cfg.withDefaults()
	if cfg.RecordCount <= 0 {
		return fmt.Errorf("ycsb: RecordCount %d must be positive", cfg.RecordCount)
	}
	buf := make([]byte, cfg.ValueSize)
	for i := int64(0); i < int64(cfg.RecordCount); i++ {
		if err := target.Store.Put(key(i), valueFor(buf, i, 0)); err != nil {
			return fmt.Errorf("ycsb: load record %d: %w", i, err)
		}
		target.Pump()
	}
	return nil
}

// opChooser draws operation kinds according to the workload mix.
type opChooser struct {
	rng *sim.RNG
	w   Workload
}

func (o *opChooser) next() OpKind {
	r := o.rng.Float64()
	if r < o.w.ReadProportion {
		return OpRead
	}
	r -= o.w.ReadProportion
	if r < o.w.UpdateProportion {
		return OpUpdate
	}
	r -= o.w.UpdateProportion
	if r < o.w.InsertProportion {
		return OpInsert
	}
	return OpReadModifyWrite
}

// newChooser builds the request-distribution generator for one client.
// Generators are not safe for concurrent use; concurrent runs fork the
// RNG and build one chooser per client goroutine.
func newChooser(rng *sim.RNG, w Workload, records int64) (dist.Generator, *dist.Latest, error) {
	switch w.Request {
	case DistZipfian:
		return dist.NewScrambledZipfian(rng.Fork(), records, dist.ZipfianConstant), nil, nil
	case DistLatest:
		latest := dist.NewLatest(rng.Fork(), records, dist.ZipfianConstant)
		return latest, latest, nil
	case DistUniform:
		return dist.NewUniform(rng.Fork(), records), nil, nil
	case DistHotspot:
		hotSet, hotOp := w.HotSetFraction, w.HotOpFraction
		if hotSet == 0 {
			hotSet = 0.1
		}
		if hotOp == 0 {
			hotOp = 0.95
		}
		return dist.NewHotSpot(rng.Fork(), records, hotSet, hotOp), nil, nil
	default:
		return nil, nil, fmt.Errorf("ycsb: unknown distribution %d", w.Request)
	}
}

// ErrScansUnsupported is returned when a workload requires range scans
// (YCSB-E). The paper's NV-DRAM Redis does not support cross-key
// transactions, and neither does this KV store — by design, to mirror
// the evaluation exactly.
var ErrScansUnsupported = errors.New("ycsb: scans (YCSB-E) unsupported, as in the paper's evaluation")

// Run executes the run phase and returns measured throughput and
// latencies. The store must already be loaded (Load).
func Run(cfg Config, target Target) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Workload.Name == WorkloadE.Name {
		return Result{}, ErrScansUnsupported
	}
	if err := cfg.Workload.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.OperationCount <= 0 {
		return Result{}, fmt.Errorf("ycsb: OperationCount %d must be positive", cfg.OperationCount)
	}

	rng := sim.NewRNG(cfg.Seed)
	ops := &opChooser{rng: rng.Fork(), w: cfg.Workload}

	records := int64(cfg.RecordCount)
	chooser, latest, err := newChooser(rng, cfg.Workload, records)
	if err != nil {
		return Result{}, err
	}

	res := Result{Workload: cfg.Workload.Name, Operations: cfg.OperationCount}
	for k := range res.Latency {
		res.Latency[k] = &Histogram{}
	}

	valBuf := make([]byte, cfg.ValueSize)
	nextInsert := records
	version := uint64(1)
	start := target.Clock.Now()

	for op := 0; op < cfg.OperationCount; op++ {
		kind := ops.next()
		t0 := target.Clock.Now()
		target.Clock.Advance(cfg.OpServiceTime)
		switch kind {
		case OpRead:
			k := key(chooser.Next())
			if _, _, err := target.Store.Get(k); err != nil {
				return res, fmt.Errorf("ycsb: op %d read: %w", op, err)
			}
		case OpUpdate:
			rec := chooser.Next()
			version++
			if err := target.Store.Put(key(rec), valueFor(valBuf, rec, version)); err != nil {
				return res, fmt.Errorf("ycsb: op %d update: %w", op, err)
			}
		case OpInsert:
			rec := nextInsert
			nextInsert++
			if err := target.Store.Put(key(rec), valueFor(valBuf, rec, 0)); err != nil {
				return res, fmt.Errorf("ycsb: op %d insert: %w", op, err)
			}
			if latest != nil {
				latest.AddItem()
			}
		case OpReadModifyWrite:
			rec := chooser.Next()
			version++
			v := version
			if _, err := target.Store.ReadModifyWrite(key(rec), func(old []byte) []byte {
				return valueFor(valBuf, rec, v)
			}); err != nil {
				return res, fmt.Errorf("ycsb: op %d rmw: %w", op, err)
			}
		}
		target.Pump()
		res.Latency[kind].Record(target.Clock.Now().Sub(t0))
	}

	res.Elapsed = target.Clock.Now().Sub(start)
	if res.Elapsed > 0 {
		res.Throughput = float64(cfg.OperationCount) / res.Elapsed.Seconds()
	}
	return res, nil
}
