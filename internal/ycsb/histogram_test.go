package ycsb

import (
	"testing"

	"viyojit/internal/sim"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram returned non-zero stats")
	}
}

func TestHistogramMeanExact(t *testing.T) {
	var h Histogram
	h.Record(100)
	h.Record(200)
	h.Record(300)
	if h.Mean() != 200 {
		t.Fatalf("mean = %v, want 200", h.Mean())
	}
	if h.Min() != 100 || h.Max() != 300 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantileApproximate(t *testing.T) {
	var h Histogram
	// 99 samples at ~1 µs, 1 sample at ~1 ms.
	for i := 0; i < 99; i++ {
		h.Record(sim.Microsecond)
	}
	h.Record(sim.Millisecond)
	p50 := h.Quantile(0.50)
	p999 := h.Quantile(0.999)
	if p50 < sim.Microsecond/2 || p50 > 2*sim.Microsecond {
		t.Fatalf("p50 = %v, want ~1 µs", p50)
	}
	if p999 < sim.Millisecond/2 {
		t.Fatalf("p99.9 = %v, want ~1 ms", p999)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if h.Quantile(0) != h.Min() {
		t.Fatal("Quantile(0) != min")
	}
	if h.Quantile(1) != h.Max() {
		t.Fatal("Quantile(1) != max")
	}
	p99 := h.Quantile(0.99)
	if p99 < 80*sim.Microsecond || p99 > 100*sim.Microsecond {
		t.Fatalf("p99 = %v, want ~99 µs", p99)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	var h Histogram
	rng := sim.NewRNG(3)
	for i := 0; i < 10000; i++ {
		h.Record(sim.Duration(rng.Intn(1_000_000)))
	}
	prev := sim.Duration(-1)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative sample recorded as %v", h.Min())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Record(100)
	b.Record(300)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Mean() != 200 {
		t.Fatalf("merged mean = %v", a.Mean())
	}
	if a.Min() != 100 || a.Max() != 300 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 2 {
		t.Fatal("merging empty changed count")
	}
}

func TestHistogramHugeSampleClamped(t *testing.T) {
	var h Histogram
	h.Record(1 << 62) // beyond the bucket range
	if h.Count() != 1 {
		t.Fatal("huge sample lost")
	}
	if h.Quantile(0.5) != h.Max() {
		t.Fatalf("quantile of single huge sample = %v, want max %v", h.Quantile(0.5), h.Max())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Min != sim.Microsecond || s.Max != 1000*sim.Microsecond {
		t.Fatalf("snapshot basics wrong: %+v", s)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999) {
		t.Fatalf("percentiles not ordered: %+v", s)
	}
	if s.P50 < 400*sim.Microsecond || s.P50 > 600*sim.Microsecond {
		t.Fatalf("p50 = %v, want ~500us", s.P50)
	}
}
