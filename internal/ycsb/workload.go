// Package ycsb reimplements the slice of the Yahoo! Cloud Serving
// Benchmark the paper's evaluation uses (§6.1): workloads A, B, C, D and
// F, with the standard request distributions, a load phase, and a run
// phase that records per-operation latencies on the virtual clock.
// Workload E (scans) is omitted exactly as the paper omits it: the
// NV-DRAM Redis does not support cross-key transactions.
package ycsb

import "fmt"

// OpKind is the type of one benchmark operation.
type OpKind int

// Operation kinds. YCSB's UPDATE overwrites a whole value; INSERT creates
// a new record; READ-MODIFY-WRITE reads then overwrites.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpReadModifyWrite
	numOpKinds
)

// String returns the YCSB-style name of the operation.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpReadModifyWrite:
		return "READ-MODIFY-WRITE"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Distribution selects the request key chooser.
type Distribution int

// Request distributions used by the standard workloads.
const (
	// DistZipfian is YCSB's scrambled Zipfian (hot keys spread across
	// the keyspace).
	DistZipfian Distribution = iota
	// DistLatest biases toward recently inserted records.
	DistLatest
	// DistUniform draws keys uniformly.
	DistUniform
	// DistHotspot sends HotOpFraction of requests to the first
	// HotSetFraction of the keyspace — the trace-like skew of §3's
	// category-3 volumes (e.g. Cosmos F: 99 % of writes to ~10 % of
	// pages). Used by the ablation experiments.
	DistHotspot
)

// Workload is an operation mix plus request distribution.
type Workload struct {
	Name string
	// Proportions must sum to 1.
	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	RMWProportion    float64
	Request          Distribution
	// HotSetFraction / HotOpFraction parameterise DistHotspot (ignored
	// for other distributions).
	HotSetFraction float64
	HotOpFraction  float64
	// Description mirrors the paper's §6.1 characterisation.
	Description string
	// PrimaryOp is the operation whose latency the paper reports for
	// this workload in Fig 8.
	PrimaryOp OpKind
}

// The standard workloads, with the proportions from Cooper et al. and the
// paper's §6.1 descriptions.
var (
	WorkloadA = Workload{
		Name: "YCSB-A", ReadProportion: 0.5, UpdateProportion: 0.5,
		Request:     DistZipfian,
		Description: "update heavy: interactive applications creating content rapidly",
		PrimaryOp:   OpUpdate,
	}
	WorkloadB = Workload{
		Name: "YCSB-B", ReadProportion: 0.95, UpdateProportion: 0.05,
		Request:     DistZipfian,
		Description: "read mostly: document serving, frequent reads, rare edits",
		PrimaryOp:   OpUpdate,
	}
	WorkloadC = Workload{
		Name: "YCSB-C", ReadProportion: 1.0,
		Request:     DistZipfian,
		Description: "read only: image-serving front ends (internal metadata still stores)",
		PrimaryOp:   OpRead,
	}
	WorkloadD = Workload{
		Name: "YCSB-D", ReadProportion: 0.95, InsertProportion: 0.05,
		Request:     DistLatest,
		Description: "read latest: social media posts read by many right after insertion",
		PrimaryOp:   OpInsert,
	}
	WorkloadF = Workload{
		Name: "YCSB-F", ReadProportion: 0.5, RMWProportion: 0.5,
		Request:     DistZipfian,
		Description: "read-modify-write: user-record stores read and modified",
		PrimaryOp:   OpReadModifyWrite,
	}
)

// WorkloadAHotspot is YCSB-A's 50/50 mix over a hotspot distribution
// with trace-like skew: hotOpFraction of requests hit the first
// hotSetFraction of keys. The ablation experiments use it because the
// victim-policy and TLB-precision effects only surface when the hot set
// fits under the budget while a cold tail keeps the cleaner busy.
func WorkloadAHotspot(hotSetFraction, hotOpFraction float64) Workload {
	return Workload{
		Name: "YCSB-A-hot", ReadProportion: 0.5, UpdateProportion: 0.5,
		Request:        DistHotspot,
		HotSetFraction: hotSetFraction,
		HotOpFraction:  hotOpFraction,
		Description:    "update heavy with trace-like hotspot skew (ablations)",
		PrimaryOp:      OpUpdate,
	}
}

// WorkloadE is YCSB's scan-heavy workload. The paper could not run it —
// "it requires cross key transactions which we do not support for now"
// (§6.1) — and this reproduction mirrors that: the runner rejects it
// with ErrScansUnsupported so the parity is explicit rather than silent.
var WorkloadE = Workload{
	Name: "YCSB-E", ReadProportion: 0.95, InsertProportion: 0.05,
	Request:     DistZipfian,
	Description: "short ranges: threaded conversations (UNSUPPORTED, as in the paper)",
	PrimaryOp:   OpRead,
}

// StandardWorkloads returns A, B, C, D, F in the order the paper's
// figures present them.
func StandardWorkloads() []Workload {
	return []Workload{WorkloadA, WorkloadB, WorkloadC, WorkloadD, WorkloadF}
}

// Validate checks that the proportions form a distribution.
func (w Workload) Validate() error {
	sum := w.ReadProportion + w.UpdateProportion + w.InsertProportion + w.RMWProportion
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("ycsb: workload %s proportions sum to %v, want 1", w.Name, sum)
	}
	for _, p := range []float64{w.ReadProportion, w.UpdateProportion, w.InsertProportion, w.RMWProportion} {
		if p < 0 {
			return fmt.Errorf("ycsb: workload %s has negative proportion", w.Name)
		}
	}
	return nil
}
