package ycsb

import (
	"math"

	"viyojit/internal/sim"
)

// Histogram is a log-bucketed latency histogram: constant memory, exact
// mean, and quantiles accurate to the bucket growth factor (2^(1/8) ≈ 9 %
// relative error), which is plenty for reproducing latency *shapes*.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     sim.Duration
	min     sim.Duration
	max     sim.Duration
}

const (
	// bucketsPerOctave sub-buckets per power of two.
	bucketsPerOctave = 8
	// maxOctaves covers 1 ns .. ~2^40 ns (~18 minutes).
	maxOctaves = 40
	numBuckets = bucketsPerOctave * maxOctaves
)

// bucketIndex maps a duration to its bucket.
func bucketIndex(d sim.Duration) int {
	if d < 1 {
		d = 1
	}
	idx := int(math.Log2(float64(d)) * bucketsPerOctave)
	if idx < 0 {
		idx = 0
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketValue returns the representative duration of a bucket (geometric
// midpoint of its range).
func bucketValue(idx int) sim.Duration {
	return sim.Duration(math.Exp2((float64(idx) + 0.5) / bucketsPerOctave))
}

// Record adds one latency sample.
func (h *Histogram) Record(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)]++
	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact mean of the recorded samples.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.count)
}

// Min and Max return the extreme samples.
func (h *Histogram) Min() sim.Duration { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() sim.Duration { return h.max }

// Quantile returns the approximate q-quantile (q in [0,1]); q = 0.99
// gives the 99th percentile the paper reports.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			v := bucketValue(i)
			if v > h.max {
				return h.max
			}
			if v < h.min {
				return h.min
			}
			return v
		}
	}
	return h.max
}

// Merge folds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Summary is a fixed set of distribution statistics for reporting and
// plotting tools.
type Summary struct {
	Count               uint64
	Mean, Min, Max      sim.Duration
	P50, P90, P99, P999 sim.Duration
}

// Snapshot returns the histogram's summary statistics.
func (h *Histogram) Snapshot() Summary {
	return Summary{
		Count: h.count,
		Mean:  h.Mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
