package ycsb

import (
	"errors"
	"testing"

	"viyojit/internal/kvstore"
	"viyojit/internal/pheap"
	"viyojit/internal/sim"
)

// memStore is an in-memory pheap.Store that charges a small per-access
// cost so throughput is finite.
type memStore struct {
	data  []byte
	clock *sim.Clock
}

func (m *memStore) Size() int64 { return int64(len(m.data)) }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	m.clock.Advance(100 * sim.Nanosecond)
	copy(p, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	m.clock.Advance(100 * sim.Nanosecond)
	copy(m.data[off:], p)
	return nil
}

func newTestTarget(t testing.TB, heapBytes int) Target {
	t.Helper()
	clock := sim.NewClock()
	ms := &memStore{data: make([]byte, heapBytes), clock: clock}
	heap, err := pheap.Format(ms)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.Create(heap, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return Target{Store: store, Clock: clock, Pump: func() {}}
}

func TestWorkloadValidation(t *testing.T) {
	for _, w := range StandardWorkloads() {
		if err := w.Validate(); err != nil {
			t.Errorf("standard workload %s invalid: %v", w.Name, err)
		}
	}
	bad := Workload{Name: "bad", ReadProportion: 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("half-sum workload validated")
	}
	neg := Workload{Name: "neg", ReadProportion: 1.5, UpdateProportion: -0.5}
	if err := neg.Validate(); err == nil {
		t.Error("negative proportion validated")
	}
}

func TestOpKindStrings(t *testing.T) {
	if OpRead.String() != "READ" || OpReadModifyWrite.String() != "READ-MODIFY-WRITE" {
		t.Fatal("op kind names wrong")
	}
	if OpKind(99).String() == "" {
		t.Fatal("unknown op kind has empty name")
	}
}

func TestLoadThenRunAllWorkloads(t *testing.T) {
	for _, w := range StandardWorkloads() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			target := newTestTarget(t, 8<<20)
			cfg := Config{
				Workload:       w,
				RecordCount:    500,
				OperationCount: 2000,
				ValueSize:      256,
				Seed:           42,
			}
			if err := Load(cfg, target); err != nil {
				t.Fatal(err)
			}
			res, err := Run(cfg, target)
			if err != nil {
				t.Fatal(err)
			}
			if res.Operations != 2000 {
				t.Fatalf("operations = %d", res.Operations)
			}
			if res.Throughput <= 0 {
				t.Fatal("throughput not positive")
			}
			if res.LatencyOf(w.PrimaryOp).Count() == 0 && w.Name != "YCSB-C" {
				t.Fatalf("no samples for primary op %v", w.PrimaryOp)
			}
		})
	}
}

func TestRunOpMixMatchesProportions(t *testing.T) {
	target := newTestTarget(t, 8<<20)
	cfg := Config{
		Workload:       WorkloadB, // 95/5
		RecordCount:    200,
		OperationCount: 10000,
		ValueSize:      64,
		Seed:           7,
	}
	if err := Load(cfg, target); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	reads := float64(res.LatencyOf(OpRead).Count())
	updates := float64(res.LatencyOf(OpUpdate).Count())
	frac := updates / (reads + updates)
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("update fraction = %v, want ~0.05", frac)
	}
}

func TestRunReadOnlyWorkloadIssuesOnlyReads(t *testing.T) {
	target := newTestTarget(t, 8<<20)
	cfg := Config{Workload: WorkloadC, RecordCount: 100, OperationCount: 1000, ValueSize: 64, Seed: 1}
	if err := Load(cfg, target); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyOf(OpRead).Count() != 1000 {
		t.Fatalf("reads = %d, want 1000", res.LatencyOf(OpRead).Count())
	}
	for _, k := range []OpKind{OpUpdate, OpInsert, OpReadModifyWrite} {
		if res.LatencyOf(k).Count() != 0 {
			t.Fatalf("%v issued under YCSB-C", k)
		}
	}
}

func TestRunInsertsGrowStore(t *testing.T) {
	target := newTestTarget(t, 16<<20)
	cfg := Config{Workload: WorkloadD, RecordCount: 300, OperationCount: 3000, ValueSize: 64, Seed: 3}
	if err := Load(cfg, target); err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, target)
	if err != nil {
		t.Fatal(err)
	}
	inserts := res.LatencyOf(OpInsert).Count()
	if inserts == 0 {
		t.Fatal("YCSB-D issued no inserts")
	}
	n, err := target.Store.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 300+inserts {
		t.Fatalf("store has %d records, want %d", n, 300+inserts)
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		target := newTestTarget(t, 8<<20)
		cfg := Config{Workload: WorkloadA, RecordCount: 200, OperationCount: 1000, ValueSize: 128, Seed: 99}
		if err := Load(cfg, target); err != nil {
			t.Fatal(err)
		}
		res, err := Run(cfg, target)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Throughput != b.Throughput || a.Elapsed != b.Elapsed {
		t.Fatalf("same-seed runs differ: %v vs %v", a.Throughput, b.Throughput)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	target := newTestTarget(t, 1<<20)
	if _, err := Run(Config{Workload: Workload{Name: "bad"}, OperationCount: 10, RecordCount: 10}, target); err == nil {
		t.Fatal("invalid workload accepted")
	}
	if _, err := Run(Config{Workload: WorkloadA, RecordCount: 10}, target); err == nil {
		t.Fatal("zero operation count accepted")
	}
	if err := Load(Config{Workload: WorkloadA}, target); err == nil {
		t.Fatal("zero record count load accepted")
	}
}

func TestThroughputUnit(t *testing.T) {
	r := Result{Throughput: 42000}
	if r.ThroughputKOps() != 42 {
		t.Fatalf("KOps = %v", r.ThroughputKOps())
	}
}

func TestWorkloadERejectedLikeThePaper(t *testing.T) {
	target := newTestTarget(t, 1<<20)
	_, err := Run(Config{Workload: WorkloadE, RecordCount: 10, OperationCount: 10}, target)
	if !errors.Is(err, ErrScansUnsupported) {
		t.Fatalf("err = %v, want ErrScansUnsupported", err)
	}
}
