// Package mmu implements a software memory-management unit: a page table
// with present / write-protect / dirty / accessed bits, a TLB model, and
// delivery of write-protection faults to a registered handler.
//
// The Viyojit paper manipulates real x86-64 page tables from a kernel
// module. Everything its mechanism needs from the hardware is reproduced
// here with the same semantics and modelled costs:
//
//   - writes to a write-protected page trap to a fault handler;
//   - the first write to a writable page sets the page-table dirty bit;
//   - changing a page's protection requires invalidating its TLB entry;
//   - reading *fresh* dirty bits during an epoch scan requires a full TLB
//     flush — without it, a page whose dirty bit was cleared but whose
//     translation is still cached will not have its dirty bit re-set by
//     subsequent writes (the stale-dirty-bit effect behind the paper's
//     §6.3 TLB ablation).
package mmu

import (
	"fmt"

	"viyojit/internal/sim"
)

// PageID identifies a page within a page table, in [0, NumPages).
type PageID uint64

// Costs models the virtual-time price of MMU operations. The defaults
// (DefaultCosts) are calibrated for the repository's scaled-down
// experiments; see DESIGN.md §5.
type Costs struct {
	// Trap is the cost of delivering a write-protection fault to the
	// handler and returning (mode switches, handler entry/exit). The
	// handler's own work is charged separately by the handler.
	Trap sim.Duration
	// PTEUpdate is the cost of setting or clearing one page-table bit.
	PTEUpdate sim.Duration
	// TLBMiss is the page-walk cost paid when a translation is not
	// cached.
	TLBMiss sim.Duration
	// TLBFlush is the fixed cost of invalidating the entire TLB.
	TLBFlush sim.Duration
	// TLBInvalidatePage is the cost of invalidating a single cached
	// translation (invlpg).
	TLBInvalidatePage sim.Duration
	// WalkPerPage is the per-page cost of an epoch page-table walk
	// charged to the shared timeline. The reference configuration sets
	// it to 0: epoch walks run on a dedicated maintenance core (the
	// paper's testbed is a 20-core VM serving a single-threaded Redis),
	// so the only cross-core interference from a scan is the TLB
	// shootdown. Set it non-zero to model single-core deployments.
	WalkPerPage sim.Duration
	// Access is the base cost of one DRAM access through the MMU.
	Access sim.Duration
}

// DefaultCosts returns the calibrated default cost model (see DESIGN.md
// §5 for the calibration targets).
func DefaultCosts() Costs {
	return Costs{
		Trap:              12 * sim.Microsecond,
		PTEUpdate:         20 * sim.Nanosecond,
		TLBMiss:           100 * sim.Nanosecond,
		TLBFlush:          20 * sim.Microsecond,
		TLBInvalidatePage: 100 * sim.Nanosecond,
		WalkPerPage:       0,
		Access:            80 * sim.Nanosecond,
	}
}

// entry is one page-table entry.
type entry struct {
	present        bool
	writeProtected bool
	dirty          bool
	accessed       bool
}

// FaultHandler is invoked when a write hits a write-protected page. The
// handler is expected to resolve the fault (typically by calling Unprotect
// on the faulting page, possibly after cleaning some other page); the MMU
// then retries the write. If the page is still protected after the handler
// returns, the write fails.
type FaultHandler func(page PageID)

// DirtyNotifier is invoked when a write transitions a page's dirty bit
// from clear to set. It models the paper's §5.4 hardware extension: an
// MMU that checks the dirty bit before setting it and signals the OS, so
// dirty pages can be counted without write-protection traps. The notifier
// runs synchronously with the store (as a hardware-raised interrupt
// would) but carries no trap cost in the common case.
type DirtyNotifier func(page PageID)

// Stats counts MMU events since construction (or the last ResetStats).
type Stats struct {
	Reads            uint64
	Writes           uint64
	Faults           uint64
	TLBHits          uint64
	TLBMisses        uint64
	TLBFlushes       uint64
	TLBInvalidations uint64
	Walks            uint64
	PTEUpdates       uint64
}

// PageTable is a software page table plus TLB for a fixed number of pages.
// It is not safe for concurrent use.
type PageTable struct {
	clock    *sim.Clock
	costs    Costs
	entries  []entry
	tlb      *tlb
	handler  FaultHandler
	notifier DirtyNotifier
	stats    Stats
}

// NewPageTable creates a page table for numPages pages, all initially
// present, writable, and clean. tlbEntries bounds the TLB; 0 selects the
// default size (1536 entries, roughly a modern second-level DTLB).
func NewPageTable(clock *sim.Clock, costs Costs, numPages int, tlbEntries int) *PageTable {
	if numPages <= 0 {
		panic(fmt.Sprintf("mmu: NewPageTable with numPages=%d", numPages))
	}
	if tlbEntries <= 0 {
		tlbEntries = 1536
	}
	pt := &PageTable{
		clock:   clock,
		costs:   costs,
		entries: make([]entry, numPages),
		tlb:     newTLB(tlbEntries),
	}
	for i := range pt.entries {
		pt.entries[i].present = true
	}
	return pt
}

// NumPages returns the number of pages the table covers.
func (pt *PageTable) NumPages() int { return len(pt.entries) }

// SetFaultHandler registers the write-protection fault handler.
func (pt *PageTable) SetFaultHandler(h FaultHandler) { pt.handler = h }

// SetDirtyNotifier registers the §5.4 hardware dirty-transition signal.
func (pt *PageTable) SetDirtyNotifier(n DirtyNotifier) { pt.notifier = n }

// Stats returns a snapshot of the event counters.
func (pt *PageTable) Stats() Stats { return pt.stats }

// ResetStats zeroes the event counters.
func (pt *PageTable) ResetStats() { pt.stats = Stats{} }

func (pt *PageTable) check(page PageID) {
	if int(page) >= len(pt.entries) {
		panic(fmt.Sprintf("mmu: page %d out of range [0,%d)", page, len(pt.entries)))
	}
}

// Protect write-protects a page and invalidates its TLB entry, as required
// before the page's contents may be copied out (paper §5.1 step 6).
func (pt *PageTable) Protect(page PageID) {
	pt.check(page)
	pt.entries[page].writeProtected = true
	pt.stats.PTEUpdates++
	pt.clock.Advance(pt.costs.PTEUpdate)
	pt.invalidatePage(page)
}

// Unprotect clears a page's write protection and invalidates its TLB entry
// so the next access observes the new permission.
func (pt *PageTable) Unprotect(page PageID) {
	pt.check(page)
	pt.entries[page].writeProtected = false
	pt.stats.PTEUpdates++
	pt.clock.Advance(pt.costs.PTEUpdate)
	pt.invalidatePage(page)
}

// IsProtected reports whether a page is currently write-protected. It is a
// metadata query and charges no time.
func (pt *PageTable) IsProtected(page PageID) bool {
	pt.check(page)
	return pt.entries[page].writeProtected
}

// IsDirty reports the page's page-table dirty bit without charging time.
func (pt *PageTable) IsDirty(page PageID) bool {
	pt.check(page)
	return pt.entries[page].dirty
}

func (pt *PageTable) invalidatePage(page PageID) {
	if pt.tlb.invalidate(page) {
		pt.stats.TLBInvalidations++
		pt.clock.Advance(pt.costs.TLBInvalidatePage)
	}
}

// translate performs the TLB lookup / fill for page and returns the cached
// translation.
func (pt *PageTable) translate(page PageID) *tlbEntry {
	if te := pt.tlb.lookup(page); te != nil {
		pt.stats.TLBHits++
		return te
	}
	pt.stats.TLBMisses++
	pt.clock.Advance(pt.costs.TLBMiss)
	e := &pt.entries[page]
	return pt.tlb.fill(page, e.writeProtected)
}

// Read models a load from the page: it fills the TLB as needed and sets
// the accessed bit.
func (pt *PageTable) Read(page PageID) {
	pt.check(page)
	pt.stats.Reads++
	pt.clock.Advance(pt.costs.Access)
	pt.translate(page)
	pt.entries[page].accessed = true
}

// Write models a store to the page. If the page is write-protected the
// registered fault handler runs first and the store retries; a store to a
// page that remains protected (or with no handler registered) returns
// ErrProtected. On success the page-table dirty bit is set unless the
// cached translation already propagated it (the stale-dirty-bit model —
// see the package comment).
func (pt *PageTable) Write(page PageID) error {
	pt.check(page)
	pt.stats.Writes++
	pt.clock.Advance(pt.costs.Access)

	te := pt.translate(page)
	if te.writeProtected {
		pt.stats.Faults++
		pt.clock.Advance(pt.costs.Trap)
		if pt.handler == nil {
			return ErrProtected
		}
		pt.handler(page)
		// Retry: the handler should have unprotected the page (and, in
		// doing so, invalidated its TLB entry), so re-translate.
		te = pt.translate(page)
		if te.writeProtected {
			return ErrProtected
		}
	}
	if !te.dirtyPropagated {
		// Hardware sets the PTE dirty bit on the first write through a
		// translation whose D bit is not yet cached as set.
		te.dirtyPropagated = true
		if !pt.entries[page].dirty {
			pt.entries[page].dirty = true
			if pt.notifier != nil {
				pt.notifier(page)
			}
		}
	}
	pt.entries[page].accessed = true
	return nil
}

// ErrProtected is returned by Write when a write-protection fault cannot
// be resolved.
var ErrProtected = fmt.Errorf("mmu: write to protected page not resolved by fault handler")

// FlushTLB invalidates every cached translation. After a flush, the next
// write to any page goes through a page walk and re-sets the PTE dirty
// bit, so a subsequent scan sees fresh information.
func (pt *PageTable) FlushTLB() {
	pt.stats.TLBFlushes++
	pt.clock.Advance(pt.costs.TLBFlush)
	pt.tlb.flush()
}

// ScanAndClearDirty walks the whole page table, appending the PageID of
// every page whose dirty bit is set to dst, and clears those dirty bits.
// It returns the extended slice. If flushTLB is true the TLB is flushed
// first, so the bits read are precise; if false, the scan is cheaper but
// pages written through still-cached translations since the last scan may
// be missed (paper §5.2 and §6.3).
//
// The walk charges WalkPerPage per page plus one PTEUpdate per cleared
// bit.
func (pt *PageTable) ScanAndClearDirty(dst []PageID, flushTLB bool) []PageID {
	if flushTLB {
		pt.FlushTLB()
	}
	pt.stats.Walks++
	pt.clock.Advance(pt.costs.WalkPerPage * sim.Duration(len(pt.entries)))
	cleared := 0
	for i := range pt.entries {
		if pt.entries[i].dirty {
			dst = append(dst, PageID(i))
			pt.entries[i].dirty = false
			cleared++
		}
	}
	if cleared > 0 {
		pt.stats.PTEUpdates += uint64(cleared)
		pt.clock.Advance(pt.costs.PTEUpdate * sim.Duration(cleared))
	}
	return dst
}

// CheckAndClearDirtyPages reads and clears the dirty bits of just the
// given pages, appending the updated ones to dst. This is the scan
// Viyojit actually performs each epoch: clean pages are write-protected
// and cannot have been dirtied without a fault, so only the
// known-to-be-dirty pages need checking (paper §1: "periodically checking
// and clearing the page table dirty bits for known-to-be-dirty pages").
// The TLB-precision caveat of ScanAndClearDirty applies: without
// flushTLB, pages written through still-cached translations are missed.
func (pt *PageTable) CheckAndClearDirtyPages(pages []PageID, dst []PageID, flushTLB bool) []PageID {
	if flushTLB {
		pt.FlushTLB()
	}
	pt.stats.Walks++
	pt.clock.Advance(pt.costs.WalkPerPage * sim.Duration(len(pages)))
	cleared := 0
	for _, p := range pages {
		pt.check(p)
		if pt.entries[p].dirty {
			dst = append(dst, p)
			pt.entries[p].dirty = false
			cleared++
		}
	}
	if cleared > 0 {
		pt.stats.PTEUpdates += uint64(cleared)
		pt.clock.Advance(pt.costs.PTEUpdate * sim.Duration(cleared))
	}
	return dst
}

// ScanAndClearAccessed walks the page table collecting and clearing
// accessed bits, with the same TLB-precision caveat as
// ScanAndClearDirty. It exists for LRU-style policies over reads and for
// completeness of the MMU model.
func (pt *PageTable) ScanAndClearAccessed(dst []PageID, flushTLB bool) []PageID {
	if flushTLB {
		pt.FlushTLB()
	}
	pt.stats.Walks++
	pt.clock.Advance(pt.costs.WalkPerPage * sim.Duration(len(pt.entries)))
	for i := range pt.entries {
		if pt.entries[i].accessed {
			dst = append(dst, PageID(i))
			pt.entries[i].accessed = false
		}
	}
	return dst
}

// ClearDirty clears one page's dirty bit (used when a page is written out
// individually rather than via an epoch scan) and invalidates its TLB
// entry so future writes re-set the bit.
func (pt *PageTable) ClearDirty(page PageID) {
	pt.check(page)
	if pt.entries[page].dirty {
		pt.entries[page].dirty = false
		pt.stats.PTEUpdates++
		pt.clock.Advance(pt.costs.PTEUpdate)
	}
	pt.invalidatePage(page)
}
