package mmu

import (
	"errors"
	"testing"
	"testing/quick"

	"viyojit/internal/sim"
)

func newTestPT(pages int) (*PageTable, *sim.Clock) {
	c := sim.NewClock()
	return NewPageTable(c, DefaultCosts(), pages, 0), c
}

func TestWriteSetsDirtyBit(t *testing.T) {
	pt, _ := newTestPT(8)
	if err := pt.Write(3); err != nil {
		t.Fatal(err)
	}
	if !pt.IsDirty(3) {
		t.Fatal("dirty bit not set after write")
	}
	if pt.IsDirty(2) {
		t.Fatal("dirty bit set on unwritten page")
	}
}

func TestWriteToProtectedPageFaults(t *testing.T) {
	pt, _ := newTestPT(8)
	pt.Protect(5)
	var faulted []PageID
	pt.SetFaultHandler(func(p PageID) {
		faulted = append(faulted, p)
		pt.Unprotect(p)
	})
	if err := pt.Write(5); err != nil {
		t.Fatal(err)
	}
	if len(faulted) != 1 || faulted[0] != 5 {
		t.Fatalf("fault handler calls = %v, want [5]", faulted)
	}
	if !pt.IsDirty(5) {
		t.Fatal("dirty bit not set after resolved fault")
	}
	// Second write to the now-unprotected page must not fault again.
	if err := pt.Write(5); err != nil {
		t.Fatal(err)
	}
	if len(faulted) != 1 {
		t.Fatalf("second write faulted: %v", faulted)
	}
}

func TestWriteWithoutHandlerFails(t *testing.T) {
	pt, _ := newTestPT(4)
	pt.Protect(0)
	err := pt.Write(0)
	if !errors.Is(err, ErrProtected) {
		t.Fatalf("err = %v, want ErrProtected", err)
	}
}

func TestWriteHandlerLeavesProtectedFails(t *testing.T) {
	pt, _ := newTestPT(4)
	pt.Protect(0)
	pt.SetFaultHandler(func(PageID) {}) // refuses to unprotect
	if err := pt.Write(0); !errors.Is(err, ErrProtected) {
		t.Fatalf("err = %v, want ErrProtected", err)
	}
}

func TestScanAndClearDirty(t *testing.T) {
	pt, _ := newTestPT(16)
	for _, p := range []PageID{1, 4, 9} {
		if err := pt.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	got := pt.ScanAndClearDirty(nil, true)
	want := map[PageID]bool{1: true, 4: true, 9: true}
	if len(got) != 3 {
		t.Fatalf("scan returned %v, want 3 pages", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("scan returned unexpected page %d", p)
		}
	}
	// Bits were cleared.
	if again := pt.ScanAndClearDirty(nil, true); len(again) != 0 {
		t.Fatalf("second scan returned %v, want empty", again)
	}
}

// The stale-dirty-bit effect: after a scan that clears dirty bits WITHOUT
// flushing the TLB, a page whose translation is still cached does not get
// its PTE dirty bit re-set on subsequent writes, so the next scan misses
// it. With a flush, the next scan sees it. This asymmetry is the mechanism
// behind the paper's §6.3 TLB ablation.
func TestStaleDirtyBitsWithoutTLBFlush(t *testing.T) {
	// Without flush: stale.
	pt, _ := newTestPT(8)
	if err := pt.Write(2); err != nil {
		t.Fatal(err)
	}
	pt.ScanAndClearDirty(nil, false) // clears PTE bit, TLB entry survives
	if err := pt.Write(2); err != nil {
		t.Fatal(err)
	}
	if got := pt.ScanAndClearDirty(nil, false); len(got) != 0 {
		t.Fatalf("unflushed scan saw %v; cached translation should hide the write", got)
	}

	// With flush: fresh.
	pt2, _ := newTestPT(8)
	if err := pt2.Write(2); err != nil {
		t.Fatal(err)
	}
	pt2.ScanAndClearDirty(nil, true)
	if err := pt2.Write(2); err != nil {
		t.Fatal(err)
	}
	got := pt2.ScanAndClearDirty(nil, true)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("flushed scan saw %v, want [2]", got)
	}
}

func TestProtectInvalidatesTLBEntry(t *testing.T) {
	pt, _ := newTestPT(8)
	if err := pt.Write(1); err != nil { // fills TLB
		t.Fatal(err)
	}
	before := pt.Stats().TLBMisses
	pt.Protect(1) // must invalidate the cached translation
	pt.SetFaultHandler(func(p PageID) { pt.Unprotect(p) })
	if err := pt.Write(1); err != nil {
		t.Fatal(err)
	}
	if pt.Stats().TLBMisses == before {
		t.Fatal("write after Protect did not re-walk: stale TLB entry used")
	}
	if pt.Stats().Faults != 1 {
		t.Fatalf("faults = %d, want 1", pt.Stats().Faults)
	}
}

func TestClearDirtySinglePage(t *testing.T) {
	pt, _ := newTestPT(8)
	if err := pt.Write(6); err != nil {
		t.Fatal(err)
	}
	pt.ClearDirty(6)
	if pt.IsDirty(6) {
		t.Fatal("dirty bit survived ClearDirty")
	}
	// ClearDirty invalidates the TLB entry, so a fresh write re-sets it.
	if err := pt.Write(6); err != nil {
		t.Fatal(err)
	}
	if !pt.IsDirty(6) {
		t.Fatal("dirty bit not re-set after ClearDirty+write")
	}
}

func TestAccessedBits(t *testing.T) {
	pt, _ := newTestPT(8)
	pt.Read(3)
	if err := pt.Write(5); err != nil {
		t.Fatal(err)
	}
	got := pt.ScanAndClearAccessed(nil, true)
	seen := map[PageID]bool{}
	for _, p := range got {
		seen[p] = true
	}
	if !seen[3] || !seen[5] || len(got) != 2 {
		t.Fatalf("accessed scan = %v, want pages 3 and 5", got)
	}
	if again := pt.ScanAndClearAccessed(nil, true); len(again) != 0 {
		t.Fatalf("accessed bits not cleared: %v", again)
	}
}

func TestCostsAdvanceClock(t *testing.T) {
	pt, clock := newTestPT(8)
	t0 := clock.Now()
	if err := pt.Write(0); err != nil {
		t.Fatal(err)
	}
	if clock.Now() == t0 {
		t.Fatal("write charged no virtual time")
	}
	t1 := clock.Now()
	pt.FlushTLB()
	if clock.Now().Sub(t1) != DefaultCosts().TLBFlush {
		t.Fatalf("TLB flush charged %v, want %v", clock.Now().Sub(t1), DefaultCosts().TLBFlush)
	}
}

func TestFaultCostChargedOnTrap(t *testing.T) {
	pt, clock := newTestPT(8)
	pt.SetFaultHandler(func(p PageID) { pt.Unprotect(p) })

	// Unprotected write cost.
	if err := pt.Write(0); err != nil {
		t.Fatal(err)
	}
	base := clock.Now()

	pt.Protect(1)
	afterProtect := clock.Now()
	if err := pt.Write(1); err != nil {
		t.Fatal(err)
	}
	faultCost := clock.Now().Sub(afterProtect)
	plainCost := sim.Duration(base) // cost of the first plain write
	if faultCost <= plainCost {
		t.Fatalf("faulting write (%v) not more expensive than plain write (%v)", faultCost, plainCost)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	pt, _ := newTestPT(4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range page did not panic")
		}
	}()
	pt.Read(4)
}

func TestStatsCounters(t *testing.T) {
	pt, _ := newTestPT(8)
	pt.SetFaultHandler(func(p PageID) { pt.Unprotect(p) })
	pt.Protect(0)
	_ = pt.Write(0)
	pt.Read(1)
	s := pt.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.Faults != 1 {
		t.Fatalf("stats = %+v", s)
	}
	pt.ResetStats()
	if pt.Stats() != (Stats{}) {
		t.Fatalf("ResetStats left %+v", pt.Stats())
	}
}

// Property: a write to an unprotected page always results in the dirty bit
// being observable by a flushed scan, regardless of prior TLB state.
func TestDirtyVisibleAfterFlushedScanProperty(t *testing.T) {
	f := func(seed uint64, writes []uint8) bool {
		pt, _ := newTestPT(256)
		rng := sim.NewRNG(seed)
		// Random prior activity.
		for i := 0; i < 64; i++ {
			_ = pt.Write(PageID(rng.Intn(256)))
		}
		pt.ScanAndClearDirty(nil, true)
		want := map[PageID]bool{}
		for _, w := range writes {
			p := PageID(w)
			if err := pt.Write(p); err != nil {
				return false
			}
			want[p] = true
		}
		got := pt.ScanAndClearDirty(nil, true)
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckAndClearDirtyPages(t *testing.T) {
	pt, clock := newTestPT(32)
	for _, p := range []PageID{3, 7, 11} {
		if err := pt.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	// Check a set that includes dirty and clean pages.
	t0 := clock.Now()
	got := pt.CheckAndClearDirtyPages([]PageID{3, 4, 7, 8}, nil, true)
	if clock.Now() == t0 {
		t.Fatal("targeted scan charged no time")
	}
	want := map[PageID]bool{3: true, 7: true}
	if len(got) != 2 {
		t.Fatalf("scan returned %v", got)
	}
	for _, p := range got {
		if !want[p] {
			t.Fatalf("unexpected page %d in scan result", p)
		}
	}
	// Page 11 was not in the scan set and keeps its dirty bit.
	if !pt.IsDirty(11) {
		t.Fatal("unscanned page lost its dirty bit")
	}
	if pt.IsDirty(3) || pt.IsDirty(7) {
		t.Fatal("scanned pages kept their dirty bits")
	}
}

func TestCheckAndClearDirtyPagesStaleWithoutFlush(t *testing.T) {
	pt, _ := newTestPT(8)
	if err := pt.Write(2); err != nil {
		t.Fatal(err)
	}
	pt.CheckAndClearDirtyPages([]PageID{2}, nil, false)
	if err := pt.Write(2); err != nil {
		t.Fatal(err)
	}
	// Without a flush, the cached translation hides the re-update.
	if got := pt.CheckAndClearDirtyPages([]PageID{2}, nil, false); len(got) != 0 {
		t.Fatalf("unflushed targeted scan saw %v", got)
	}
	// A flush makes *future* writes visible again (writes already hidden
	// behind the cached translation are gone for good — the x86
	// semantics behind the §6.3 ablation's precision loss).
	pt.FlushTLB()
	if err := pt.Write(2); err != nil {
		t.Fatal(err)
	}
	if got := pt.CheckAndClearDirtyPages([]PageID{2}, nil, true); len(got) != 1 {
		t.Fatalf("post-flush targeted scan saw %v, want [2]", got)
	}
}
