package mmu

import "testing"

func TestTLBFillAndLookup(t *testing.T) {
	tl := newTLB(4)
	tl.fill(10, false)
	if tl.lookup(10) == nil {
		t.Fatal("lookup missed after fill")
	}
	if tl.lookup(11) != nil {
		t.Fatal("lookup hit on never-filled page")
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tl := newTLB(3)
	for p := PageID(0); p < 5; p++ {
		tl.fill(p, false)
	}
	if tl.size() != 3 {
		t.Fatalf("size = %d, want 3", tl.size())
	}
	// FIFO: the oldest entries (0, 1) were evicted.
	if tl.lookup(0) != nil || tl.lookup(1) != nil {
		t.Fatal("oldest entries not evicted")
	}
	for p := PageID(2); p < 5; p++ {
		if tl.lookup(p) == nil {
			t.Fatalf("recent entry %d evicted", p)
		}
	}
}

func TestTLBInvalidate(t *testing.T) {
	tl := newTLB(4)
	tl.fill(7, true)
	if !tl.invalidate(7) {
		t.Fatal("invalidate of cached page returned false")
	}
	if tl.invalidate(7) {
		t.Fatal("invalidate of absent page returned true")
	}
	if tl.lookup(7) != nil {
		t.Fatal("entry survived invalidation")
	}
}

func TestTLBFlush(t *testing.T) {
	tl := newTLB(8)
	for p := PageID(0); p < 8; p++ {
		tl.fill(p, false)
	}
	tl.flush()
	if tl.size() != 0 {
		t.Fatalf("size after flush = %d", tl.size())
	}
	for p := PageID(0); p < 8; p++ {
		if tl.lookup(p) != nil {
			t.Fatalf("entry %d survived flush", p)
		}
	}
}

func TestTLBRefillSameEntryUpdatesProtection(t *testing.T) {
	tl := newTLB(4)
	e1 := tl.fill(3, false)
	e1.dirtyPropagated = true
	e2 := tl.fill(3, true)
	if e2 != e1 {
		t.Fatal("refill allocated a new entry for a cached page")
	}
	if !e2.writeProtected {
		t.Fatal("refill did not update protection")
	}
}

func TestTLBEvictionSkipsInvalidatedSlots(t *testing.T) {
	tl := newTLB(3)
	tl.fill(0, false)
	tl.fill(1, false)
	tl.fill(2, false)
	tl.invalidate(0) // leaves a dead slot at the fifo head
	tl.fill(3, false)
	// 1 should now be the eviction candidate, not the dead slot.
	tl.fill(4, false)
	if tl.lookup(1) != nil {
		t.Fatal("expected entry 1 to be evicted after dead-slot skip")
	}
	if tl.lookup(2) == nil || tl.lookup(3) == nil || tl.lookup(4) == nil {
		t.Fatal("live entries lost during eviction")
	}
	if tl.size() != 3 {
		t.Fatalf("size = %d, want 3", tl.size())
	}
}

func TestTLBCompactBoundsFIFO(t *testing.T) {
	tl := newTLB(4)
	// Churn enough entries to force many evictions and check the fifo ring
	// does not grow without bound.
	for p := PageID(0); p < 10000; p++ {
		tl.fill(p, false)
	}
	if len(tl.fifo)-tl.head > 4+64 {
		t.Fatalf("fifo ring grew unbounded: len=%d head=%d", len(tl.fifo), tl.head)
	}
}
