package mmu

// tlbEntry is a cached translation. writeProtected mirrors the PTE
// permission at fill time; dirtyPropagated records whether a write through
// this cached translation has already set the PTE dirty bit — once true,
// further writes do not touch the PTE, which is exactly how stale dirty
// bits arise when the TLB is not flushed between epoch scans.
type tlbEntry struct {
	page            PageID
	writeProtected  bool
	dirtyPropagated bool
}

// tlb is a fixed-capacity translation cache with FIFO replacement. FIFO is
// chosen over random eviction to keep the simulation deterministic; the
// experiments are insensitive to the replacement policy because the
// effects that matter are full flushes and single-page invalidations.
type tlb struct {
	capacity int
	entries  map[PageID]*tlbEntry
	fifo     []PageID // insertion order ring
	head     int      // index of oldest live slot in fifo
}

func newTLB(capacity int) *tlb {
	return &tlb{
		capacity: capacity,
		entries:  make(map[PageID]*tlbEntry, capacity),
	}
}

// lookup returns the cached translation for page, or nil on a miss.
func (t *tlb) lookup(page PageID) *tlbEntry {
	return t.entries[page]
}

// fill inserts a translation for page, evicting the oldest entry if the
// TLB is full, and returns the new entry.
func (t *tlb) fill(page PageID, writeProtected bool) *tlbEntry {
	if e, ok := t.entries[page]; ok {
		e.writeProtected = writeProtected
		return e
	}
	for len(t.entries) >= t.capacity {
		t.evictOldest()
	}
	e := &tlbEntry{page: page, writeProtected: writeProtected}
	t.entries[page] = e
	t.fifo = append(t.fifo, page)
	return e
}

// evictOldest removes the oldest live translation. Slots whose pages were
// invalidated out of band are skipped.
func (t *tlb) evictOldest() {
	for t.head < len(t.fifo) {
		page := t.fifo[t.head]
		t.head++
		if e, ok := t.entries[page]; ok && e != nil {
			delete(t.entries, page)
			t.compact()
			return
		}
	}
	t.compact()
}

// compact reclaims the consumed prefix of the fifo ring once it dominates
// the slice, keeping memory bounded without per-op copying.
func (t *tlb) compact() {
	if t.head > len(t.fifo)/2 && t.head > 64 {
		t.fifo = append(t.fifo[:0], t.fifo[t.head:]...)
		t.head = 0
	}
}

// invalidate removes page's translation, reporting whether one was cached.
func (t *tlb) invalidate(page PageID) bool {
	if _, ok := t.entries[page]; !ok {
		return false
	}
	delete(t.entries, page)
	return true
}

// flush removes every cached translation.
func (t *tlb) flush() {
	clear(t.entries)
	t.fifo = t.fifo[:0]
	t.head = 0
}

// size returns the number of live translations (for tests).
func (t *tlb) size() int { return len(t.entries) }
