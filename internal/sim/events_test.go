package sim

import (
	"testing"
	"testing/quick"
)

func TestQueueFiresInTimeOrder(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		q.Schedule(at, func(now Time) { got = append(got, now) })
	}
	q.RunUntil(c, 100)
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
	if c.Now() != 100 {
		t.Fatalf("clock at %v after RunUntil(100)", c.Now())
	}
}

func TestQueueSameTimeFIFO(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		q.Schedule(50, func(Time) { order = append(order, i) })
	}
	q.RunUntil(c, 50)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestQueueRunUntilLeavesLaterEvents(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	fired := 0
	q.Schedule(10, func(Time) { fired++ })
	q.Schedule(200, func(Time) { fired++ })
	q.RunUntil(c, 100)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d, want 1", q.Len())
	}
	at, ok := q.NextAt()
	if !ok || at != 200 {
		t.Fatalf("NextAt() = %v, %v; want 200, true", at, ok)
	}
}

func TestQueueCancel(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	fired := false
	e := q.Schedule(10, func(Time) { fired = true })
	q.Cancel(e)
	q.Cancel(e) // double-cancel is a no-op
	q.Cancel(nil)
	q.RunUntil(c, 100)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after cancel")
	}
}

func TestQueueEventsScheduleEvents(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	var got []Time
	q.Schedule(10, func(now Time) {
		got = append(got, now)
		q.Schedule(now.Add(5), func(now2 Time) { got = append(got, now2) })
	})
	q.RunUntil(c, 100)
	if len(got) != 2 || got[0] != 10 || got[1] != 15 {
		t.Fatalf("chained events fired at %v, want [10 15]", got)
	}
}

func TestQueueDrain(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	n := 0
	for i := Time(1); i <= 10; i++ {
		q.Schedule(i*7, func(Time) { n++ })
	}
	q.Drain(c)
	if n != 10 {
		t.Fatalf("drained %d events, want 10", n)
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after Drain: %d", q.Len())
	}
	if c.Now() != 70 {
		t.Fatalf("clock at %v after Drain, want 70", c.Now())
	}
}

func TestQueueFiredCounter(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	if q.Fired() != 0 {
		t.Fatalf("fresh queue Fired() = %d", q.Fired())
	}
	for i := Time(1); i <= 4; i++ {
		q.Schedule(i*10, func(Time) {})
	}
	e := q.Schedule(45, func(Time) {})
	q.Cancel(e)
	q.Drain(c)
	if q.Fired() != 4 {
		t.Fatalf("Fired() = %d after draining 4 live + 1 cancelled, want 4", q.Fired())
	}
}

func TestQueueFireHookSeesStepAndTime(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	type fire struct {
		step uint64
		at   Time
	}
	var hooks []fire
	q.SetFireHook(func(step uint64, at Time) { hooks = append(hooks, fire{step, at}) })
	q.Schedule(10, func(Time) {})
	q.Schedule(20, func(Time) {})
	q.RunUntil(c, 100)
	want := []fire{{1, 10}, {2, 20}}
	if len(hooks) != len(want) {
		t.Fatalf("hook fired %d times, want %d", len(hooks), len(want))
	}
	for i := range want {
		if hooks[i] != want[i] {
			t.Fatalf("hook call %d = %+v, want %+v", i, hooks[i], want[i])
		}
	}
	q.SetFireHook(nil) // detachable
	q.Schedule(30, func(Time) {})
	q.RunUntil(c, 100)
	if len(hooks) != 2 {
		t.Fatal("detached hook still firing")
	}
}

// A hook that panics must leave the queue consistent: the event it
// interrupted was not popped and fires on the next run — the property
// the crash-point sweep depends on.
func TestQueueFireHookPanicLeavesEventQueued(t *testing.T) {
	q := NewQueue()
	c := NewClock()
	fired := 0
	q.Schedule(10, func(Time) { fired++ })
	boom := true
	q.SetFireHook(func(uint64, Time) {
		if boom {
			boom = false
			panic("power failure")
		}
	})
	func() {
		defer func() { recover() }()
		q.RunUntil(c, 100)
	}()
	if fired != 0 {
		t.Fatal("event fired despite the hook panicking before it")
	}
	if q.Len() != 1 {
		t.Fatalf("queue len = %d after hook panic, want 1 (event stays queued)", q.Len())
	}
	if q.Fired() != 0 {
		t.Fatalf("Fired() = %d after hook panic, want 0", q.Fired())
	}
	q.RunUntil(c, 100)
	if fired != 1 || q.Fired() != 1 {
		t.Fatalf("re-run fired %d events (counter %d), want 1", fired, q.Fired())
	}
}

// Reentering RunUntil or Drain from inside a handler must panic
// deterministically instead of recursing the dispatch loop, while Step —
// the virtual-blocking idiom used by cleanOneSync/emergencyDrain — stays
// legal at any depth, including after a crash-point panic unwound the loop.
func TestQueueRunUntilReentryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s reentered from a handler did not panic", name)
			}
		}()
		fn()
	}

	q := NewQueue()
	c := NewClock()
	q.Schedule(10, func(Time) {
		if !q.Dispatching() {
			t.Error("Dispatching() = false inside a handler")
		}
		mustPanic("RunUntil", func() { q.RunUntil(c, 100) })
		mustPanic("Drain", func() { q.Drain(c) })
	})
	q.RunUntil(c, 100)
	if q.Dispatching() {
		t.Fatal("Dispatching() stuck true after RunUntil returned")
	}

	// Step from inside a handler is the sanctioned way to virtually block.
	q2 := NewQueue()
	c2 := NewClock()
	var order []Time
	q2.Schedule(20, func(Time) { order = append(order, 20) })
	q2.Schedule(10, func(now Time) {
		order = append(order, 10)
		if !q2.Step(c2) { // waits for the 20-event
			t.Error("nested Step fired nothing")
		}
		mustPanic("RunUntil (under nested Step)", func() { q2.RunUntil(c2, 100) })
	})
	q2.RunUntil(c2, 100)
	if len(order) != 2 || order[0] != 10 || order[1] != 20 {
		t.Fatalf("nested Step order = %v, want [10 20]", order)
	}

	// A panic escaping RunUntil (the crash-point mechanism) must not leave
	// the guard stuck, or recovery could never pump events again.
	q3 := NewQueue()
	c3 := NewClock()
	q3.SetFireHook(func(uint64, Time) { panic("power failure") })
	q3.Schedule(10, func(Time) {})
	func() {
		defer func() { recover() }()
		q3.RunUntil(c3, 100)
	}()
	if q3.Dispatching() {
		t.Fatal("guard stuck after panic unwound RunUntil")
	}
	q3.SetFireHook(nil)
	q3.RunUntil(c3, 100) // must not panic
}

// Property: for any set of scheduled times, events fire in sorted order and
// the count matches.
func TestQueueOrderingProperty(t *testing.T) {
	f := func(times []uint16) bool {
		q := NewQueue()
		c := NewClock()
		var fired []Time
		for _, at := range times {
			q.Schedule(Time(at), func(now Time) { fired = append(fired, now) })
		}
		q.Drain(c)
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
