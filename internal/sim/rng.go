package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 seeding a xorshift64* core). Every stochastic choice in the
// simulation flows through an explicitly seeded RNG so that runs are
// reproducible; math/rand's global state is never used.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Any seed, including zero,
// is valid: seeds are passed through splitmix64 so the internal state is
// never the degenerate all-zero state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the deterministic stream for seed.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 step: guarantees a non-zero, well-mixed state.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Fork returns a new generator whose stream is derived from, but
// independent of, this one. Forking lets one experiment seed hand out
// decorrelated streams to sub-components.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
