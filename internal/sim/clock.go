// Package sim provides the deterministic simulation substrate that every
// other module in this repository is built on: a virtual clock measured in
// nanoseconds, an event queue ordered by virtual time, and seeded random
// number helpers.
//
// The Viyojit paper's evaluation ran on wall-clock time on an Azure VM.
// This reproduction instead charges every modelled action (DRAM access,
// protection trap, page-table update, TLB flush, SSD IO) to a virtual
// clock, which makes every figure reproducible bit-for-bit and independent
// of the host machine.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration's unit so the usual constants read naturally.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as a floating-point number of
// milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Microseconds returns the duration as a floating-point number of
// microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Microseconds())
	case d < Second:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

func (t Time) String() string { return Duration(t).String() }

// Clock is the virtual clock. The zero value is a clock at time zero,
// ready to use. Clock is not safe for concurrent use; the simulation is
// single-goroutine by design (see DESIGN.md §5).
type Clock struct {
	now Time
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Advancing by a negative duration
// panics: virtual time is monotonic, and a negative charge is always a
// bug in a cost model.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: Advance by negative duration %d", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock forward to t. It is a no-op if t is not after
// the current time; the clock never moves backwards.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}
