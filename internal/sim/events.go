package sim

import "container/heap"

// Event is a callback scheduled to run at a point in virtual time.
type Event struct {
	At Time
	Fn func(Time)

	seq   uint64 // tie-break so same-time events run in schedule order
	index int    // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 && e.Fn == nil }

// Queue is a priority queue of events ordered by virtual time. Events
// scheduled for the same instant fire in the order they were scheduled.
// The zero value is an empty queue ready to use.
type Queue struct {
	events   eventHeap
	seq      uint64
	fired    uint64
	fireHook func(step uint64, at Time)
	// dispatching is true while an event handler is on the stack. It is
	// the reentrancy guard: a handler may virtually block with Step (the
	// cleanOneSync idiom), but calling RunUntil or Drain from inside a
	// handler would silently recurse the whole loop — always a bug.
	dispatching bool
}

// Fired returns the number of events that have fired so far — the
// queue's step counter. Together with SetFireHook it gives external
// tooling (fault injection, crash-point sweeps) a deterministic notion
// of "where" in an execution something happened.
func (q *Queue) Fired() uint64 { return q.fired }

// SetFireHook installs fn to run immediately before each event fires,
// with the 1-based index the event will have and its virtual time. The
// hook runs before the event is removed from the queue, so a hook that
// panics (the crash-point mechanism in internal/faultinject) leaves the
// queue consistent: the event is still pending. Passing nil uninstalls
// the hook.
func (q *Queue) SetFireHook(fn func(step uint64, at Time)) { q.fireHook = fn }

// NewQueue returns an empty event queue.
func NewQueue() *Queue { return &Queue{} }

// Schedule registers fn to run at time at and returns a handle that can be
// passed to Cancel.
func (q *Queue) Schedule(at Time, fn func(Time)) *Event {
	e := &Event{At: at, Fn: fn, seq: q.seq}
	q.seq++
	heap.Push(&q.events, e)
	return e
}

// Cancel removes a pending event from the queue. Cancelling an event that
// has already fired (or was already cancelled) is a no-op.
func (q *Queue) Cancel(e *Event) {
	if e == nil || e.index < 0 {
		return
	}
	heap.Remove(&q.events, e.index)
	e.index = -1
	e.Fn = nil
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// NextAt returns the virtual time of the earliest pending event. The
// second result is false if the queue is empty.
func (q *Queue) NextAt() (Time, bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].At, true
}

// RunUntil fires, in order, every event scheduled at or before t, advancing
// the clock to each event's time before invoking it. Events may schedule
// further events; newly scheduled events at or before t also fire. After
// RunUntil returns, the clock is at max(t, clock time on entry).
//
// RunUntil must not be called from inside an event handler: the nested
// loop would fire events the outer loop believes are still pending and
// recurse arbitrarily deep under load. A handler that needs to virtually
// block on a future event uses Step instead (which remains legal at any
// depth). Reentrant calls panic deterministically.
func (q *Queue) RunUntil(c *Clock, t Time) {
	if q.dispatching {
		panic("sim: Queue.RunUntil reentered from inside an event handler; use Step to virtually block")
	}
	q.dispatching = true
	defer func() { q.dispatching = false }()
	for len(q.events) > 0 && q.events[0].At <= t {
		if q.fireHook != nil {
			q.fireHook(q.fired+1, q.events[0].At)
		}
		e := heap.Pop(&q.events).(*Event)
		e.index = -1
		q.fired++
		fn := e.Fn
		e.Fn = nil
		c.AdvanceTo(e.At)
		fn(e.At)
	}
	c.AdvanceTo(t)
}

// Step fires exactly the earliest pending event, advancing the clock to
// its time, and reports whether an event fired. It is the building block
// for "virtually blocking" callers that must wait for the next completion
// while letting unrelated events (epoch ticks, other IOs) fire in order.
// Unlike RunUntil it is legal from inside an event handler — that nesting
// IS the virtual-blocking idiom — so it saves and restores the guard.
func (q *Queue) Step(c *Clock) bool {
	if len(q.events) == 0 {
		return false
	}
	at := q.events[0].At
	if q.fireHook != nil {
		q.fireHook(q.fired+1, at)
	}
	e := heap.Pop(&q.events).(*Event)
	e.index = -1
	q.fired++
	fn := e.Fn
	e.Fn = nil
	c.AdvanceTo(at)
	prev := q.dispatching
	q.dispatching = true
	defer func() { q.dispatching = prev }()
	fn(at)
	return true
}

// Dispatching reports whether an event handler is currently on the stack
// (the state the reentrancy guard tracks).
func (q *Queue) Dispatching() bool { return q.dispatching }

// Drain fires every pending event in time order, advancing the clock along
// the way, until the queue is empty. Like RunUntil, it must not be called
// from inside an event handler.
func (q *Queue) Drain(c *Clock) {
	if q.dispatching {
		panic("sim: Queue.Drain reentered from inside an event handler; use Step to virtually block")
	}
	for len(q.events) > 0 {
		at := q.events[0].At
		q.RunUntil(c, at)
	}
}

// eventHeap implements container/heap ordered by (At, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
