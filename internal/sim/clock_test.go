package sim

import "testing"

func TestClockStartsAtZero(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	c.Advance(5 * Microsecond)
	c.Advance(3 * Millisecond)
	want := Time(5*Microsecond + 3*Millisecond)
	if c.Now() != want {
		t.Fatalf("Now() = %v, want %v", c.Now(), want)
	}
}

func TestClockAdvanceZeroIsNoop(t *testing.T) {
	c := NewClock()
	c.Advance(7)
	c.Advance(0)
	if c.Now() != 7 {
		t.Fatalf("Now() = %v, want 7", c.Now())
	}
}

func TestClockAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestClockAdvanceToNeverMovesBackwards(t *testing.T) {
	c := NewClock()
	c.Advance(100)
	c.AdvanceTo(50)
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo moved clock backwards: %v", c.Now())
	}
	c.AdvanceTo(200)
	if c.Now() != 200 {
		t.Fatalf("AdvanceTo(200): clock at %v", c.Now())
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.50us"},
		{3 * Millisecond, "3.00ms"},
		{1500 * Millisecond, "1.500s"},
	}
	for _, tc := range cases {
		if got := tc.d.String(); got != tc.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Milliseconds() != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", d.Milliseconds())
	}
	if d.Microseconds() != 1500 {
		t.Errorf("Microseconds() = %v, want 1500", d.Microseconds())
	}
	if (2 * Second).Seconds() != 2 {
		t.Errorf("Seconds() = %v, want 2", (2 * Second).Seconds())
	}
}

func TestTimeAddSub(t *testing.T) {
	t0 := Time(10)
	t1 := t0.Add(25)
	if t1 != 35 {
		t.Fatalf("Add: got %v", t1)
	}
	if t1.Sub(t0) != 25 {
		t.Fatalf("Sub: got %v", t1.Sub(t0))
	}
}
