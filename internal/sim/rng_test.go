package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGForkIndependent(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	// The child stream must not simply replay the parent stream.
	p, c := NewRNG(5), child
	p.Uint64() // consume the fork draw
	same := 0
	for i := 0; i < 100; i++ {
		if p.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked stream tracks parent: %d/100 matches", same)
	}
}

func TestRNGInt63nProperty(t *testing.T) {
	f := func(seed uint64, n int64) bool {
		if n <= 0 {
			n = 1 - n
			if n <= 0 {
				n = 1
			}
		}
		r := NewRNG(seed)
		v := r.Int63n(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
