package advisor

import (
	"testing"

	"viyojit/internal/trace"
)

func genVolume(t testing.TB, spec trace.VolumeSpec) *trace.Volume {
	t.Helper()
	v, err := trace.Generate(spec, 4*trace.Hour, 7)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func skewedLight(t testing.TB) *trace.Volume {
	return genVolume(t, trace.VolumeSpec{
		Name: "skewed-light", SizeBytes: 64 << 20,
		WorstHourWriteFraction: 0.08,
		Skew:                   trace.SkewHot, HotFraction: 0.08,
		TouchedFraction: 0.5,
	})
}

func uniqueHeavy(t testing.TB) *trace.Volume {
	return genVolume(t, trace.VolumeSpec{
		Name: "unique-heavy", SizeBytes: 64 << 20,
		WorstHourWriteFraction: 0.75,
		Skew:                   trace.SkewUnique,
		TouchedFraction:        0.9,
	})
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(nil, Options{}); err == nil {
		t.Fatal("nil volume accepted")
	}
	v := skewedLight(t)
	if _, err := Analyze(v, Options{Percentile: 2}); err == nil {
		t.Fatal("bad percentile accepted")
	}
	if _, err := Analyze(v, Options{Headroom: 0.5}); err == nil {
		t.Fatal("headroom below 1 accepted")
	}
}

func TestSkewedLightGetsSmallBudget(t *testing.T) {
	v := skewedLight(t)
	r, err := Analyze(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.WorthIt {
		t.Fatalf("skewed-light volume judged not worth decoupling: %+v", r)
	}
	if r.Category != "skewed-light" {
		t.Fatalf("category = %q", r.Category)
	}
	// A volume with ~8% hot set and ~8% hourly writes should need well
	// under a third of its capacity in budget.
	if r.BudgetFraction > 0.35 {
		t.Fatalf("budget fraction = %.2f, want small", r.BudgetFraction)
	}
	if r.BudgetPages < 1 || r.Battery.CapacityJoules <= 0 {
		t.Fatalf("degenerate recommendation: %+v", r)
	}
	// The savings vs a full battery must be substantial.
	if s := Savings(r, v, Options{}); s < 0.5 {
		t.Fatalf("savings = %.2f, want > 0.5", s)
	}
}

func TestUniqueHeavyFlaggedNotWorthIt(t *testing.T) {
	v := uniqueHeavy(t)
	r, err := Analyze(v, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.WorthIt {
		t.Fatalf("unique-heavy volume judged worth decoupling: %+v", r)
	}
	if r.Category != "unique-heavy" {
		t.Fatalf("category = %q", r.Category)
	}
	// And its budget approaches capacity, as §3 predicts.
	if r.BudgetFraction < 0.5 {
		t.Fatalf("budget fraction = %.2f, want large for category 4", r.BudgetFraction)
	}
}

func TestBudgetCoversBothDrivers(t *testing.T) {
	v := skewedLight(t)
	r, err := Analyze(v, Options{Headroom: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	need := r.WorstHourPages
	if r.HotSetPages > need {
		need = r.HotSetPages
	}
	if r.BudgetPages < need {
		t.Fatalf("budget %d below max(burst %d, hot %d)", r.BudgetPages, r.WorstHourPages, r.HotSetPages)
	}
}

func TestHigherPercentileNeedsMoreBudget(t *testing.T) {
	v := skewedLight(t)
	lo, err := Analyze(v, Options{Percentile: 0.90})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Analyze(v, Options{Percentile: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	if hi.BudgetPages < lo.BudgetPages {
		t.Fatalf("99.9%% budget (%d) below 90%% budget (%d)", hi.BudgetPages, lo.BudgetPages)
	}
}

func TestAnalyzeApplicationAggregates(t *testing.T) {
	apps, err := trace.Applications(3)
	if err != nil {
		t.Fatal(err)
	}
	app := apps[0] // Azure blob storage
	recs, agg, err := AnalyzeApplication(app, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(app.Volumes) {
		t.Fatalf("%d recommendations for %d volumes", len(recs), len(app.Volumes))
	}
	sum := 0
	for _, r := range recs {
		sum += r.BudgetPages
	}
	if agg.BudgetPages != sum {
		t.Fatalf("aggregate %d != sum of volumes %d", agg.BudgetPages, sum)
	}
	if agg.Battery.CapacityJoules <= 0 {
		t.Fatal("aggregate battery not provisioned")
	}
	if _, _, err := AnalyzeApplication(trace.Application{Name: "empty"}, Options{}); err == nil {
		t.Fatal("empty application accepted")
	}
}

func TestBatteryConversionMonotone(t *testing.T) {
	v := skewedLight(t)
	small, err := Analyze(v, Options{Headroom: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Analyze(v, Options{Headroom: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if big.Battery.CapacityJoules <= small.Battery.CapacityJoules {
		t.Fatal("more headroom did not need more battery")
	}
}
