// Package advisor turns §3-style trace analysis into a provisioning
// recommendation: how much dirty budget — and therefore how much battery
// — a volume actually needs. It operationalises the paper's workflow
// ("potentially determined using an analysis of the expected workloads
// similar to the one in Section 3", §5) for data-center operators.
//
// The recommendation works from two §3 measurements:
//
//   - the worst-interval written fraction (how much can get dirty within
//     one proactive-cleaning horizon), and
//   - the write-skew coverage (how many pages hold the target percentile
//     of writes — the set Viyojit will keep dirty at steady state).
//
// The budget must cover whichever is larger, plus headroom for the burst
// the EWMA threshold absorbs.
package advisor

import (
	"fmt"

	"viyojit/internal/battery"
	"viyojit/internal/power"
	"viyojit/internal/trace"
)

// Recommendation is the advisor's output for one volume.
type Recommendation struct {
	Volume string
	// BudgetPages is the recommended dirty budget.
	BudgetPages int
	// BudgetFraction is BudgetPages over the volume's total pages.
	BudgetFraction float64
	// Battery is a provisioned-battery configuration whose effective
	// energy covers the budget (with the configured deratings).
	Battery battery.Config
	// Drivers of the recommendation, for the operator's understanding:
	WorstHourPages int     // pages dirtied in the worst hour (burst bound)
	HotSetPages    int     // pages covering the target write percentile
	Headroom       float64 // multiplicative safety margin applied
	// Category classifies the volume per §3: "skewed-light",
	// "skewed-heavy", "unique-light", or "unique-heavy". The paper's
	// guidance: decoupling pays off least for "unique-heavy".
	Category string
	// WorthIt is false for §3's fourth category, where the budget
	// approaches the full capacity and decoupling buys little.
	WorthIt bool
}

// Options tunes the advisor.
type Options struct {
	// Percentile of writes the steady-state dirty set should cover;
	// 0 selects 0.99.
	Percentile float64
	// Headroom is the multiplicative safety margin; 0 selects 1.25.
	Headroom float64
	// SSDWriteBandwidth and DoD/Derating feed the battery conversion;
	// zeros select 2 GB/s and battery defaults.
	SSDWriteBandwidth int64
	DepthOfDischarge  float64
	Derating          float64
	// Power is the flush power model; zero selects power.Default().
	Power power.Model
}

func (o Options) withDefaults() Options {
	if o.Percentile == 0 {
		o.Percentile = 0.99
	}
	if o.Headroom == 0 {
		o.Headroom = 1.25
	}
	if o.SSDWriteBandwidth == 0 {
		o.SSDWriteBandwidth = 2 << 30
	}
	if o.Power == (power.Model{}) {
		o.Power = power.Default()
	}
	return o
}

// classify assigns §3's category from the measured fractions. Skew is
// judged against the pages *touched* (Fig 3's denominator): unique-write
// volumes need ~all touched pages even at the 90th percentile, while
// skewed ones concentrate.
func classify(writtenFraction, touchedCoverage float64) (string, bool) {
	heavy := writtenFraction > 0.30
	skewed := touchedCoverage < 0.50
	switch {
	case !heavy && skewed:
		return "skewed-light", true // §3 category 2: the best case
	case heavy && skewed:
		return "skewed-heavy", true // category 3
	case !heavy && !skewed:
		return "unique-light", true // category 1
	default:
		return "unique-heavy", false // category 4: decoupling buys little
	}
}

// Analyze recommends a budget and battery for one volume trace.
func Analyze(v *trace.Volume, opts Options) (Recommendation, error) {
	if v == nil || len(v.Events) == 0 {
		return Recommendation{}, fmt.Errorf("advisor: empty volume trace")
	}
	opts = opts.withDefaults()
	if opts.Percentile <= 0 || opts.Percentile > 1 {
		return Recommendation{}, fmt.Errorf("advisor: percentile %v outside (0,1]", opts.Percentile)
	}
	if opts.Headroom < 1 {
		return Recommendation{}, fmt.Errorf("advisor: headroom %v below 1", opts.Headroom)
	}

	pageSize := v.Spec.PageSize
	totalPages := v.TotalPages()

	// Burst bound: the worst hour's unique-page writes (the paper's
	// conservative one-write-one-page assumption).
	writtenFrac := v.WorstIntervalWrittenFraction(trace.Hour)
	worstHourPages := int(writtenFrac * float64(totalPages))

	// Steady-state bound: the hot set covering the target percentile
	// (absolute pages, Fig 4's denominator).
	coverageFrac := v.SkewTotal([]float64{opts.Percentile})[0]
	hotSetPages := int(coverageFrac * float64(totalPages))
	// Skew classification uses the touched-pages denominator (Fig 3).
	touchedCoverage := v.SkewTouched([]float64{opts.Percentile})[0]

	need := worstHourPages
	if hotSetPages > need {
		need = hotSetPages
	}
	budget := int(float64(need) * opts.Headroom)
	if budget < 1 {
		budget = 1
	}
	if budget > int(totalPages) {
		budget = int(totalPages)
	}

	category, worth := classify(writtenFrac, touchedCoverage)
	cfg := battery.ProvisionFor(
		opts.Power,
		int64(budget)*int64(pageSize),
		opts.SSDWriteBandwidth,
		v.Spec.SizeBytes,
		opts.DepthOfDischarge,
		opts.Derating,
	)
	return Recommendation{
		Volume:         v.Spec.Name,
		BudgetPages:    budget,
		BudgetFraction: float64(budget) / float64(totalPages),
		Battery:        cfg,
		WorstHourPages: worstHourPages,
		HotSetPages:    hotSetPages,
		Headroom:       opts.Headroom,
		Category:       category,
		WorthIt:        worth,
	}, nil
}

// AnalyzeApplication recommends per volume and returns the machine-level
// aggregate (the sum of per-volume budgets, which one shared battery must
// cover).
func AnalyzeApplication(app trace.Application, opts Options) ([]Recommendation, Recommendation, error) {
	if len(app.Volumes) == 0 {
		return nil, Recommendation{}, fmt.Errorf("advisor: application %q has no volumes", app.Name)
	}
	var recs []Recommendation
	var totalBudget int
	var totalPages int64
	var totalBytes int64
	worthAny := false
	for _, v := range app.Volumes {
		r, err := Analyze(v, opts)
		if err != nil {
			return nil, Recommendation{}, fmt.Errorf("advisor: volume %s: %w", v.Spec.Name, err)
		}
		recs = append(recs, r)
		totalBudget += r.BudgetPages
		totalPages += v.TotalPages()
		totalBytes += v.Spec.SizeBytes
		worthAny = worthAny || r.WorthIt
	}
	opts = opts.withDefaults()
	pageSize := app.Volumes[0].Spec.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	agg := Recommendation{
		Volume:         app.Name + " (machine total)",
		BudgetPages:    totalBudget,
		BudgetFraction: float64(totalBudget) / float64(totalPages),
		Battery: battery.ProvisionFor(
			opts.Power,
			int64(totalBudget)*int64(pageSize),
			opts.SSDWriteBandwidth,
			totalBytes,
			opts.DepthOfDischarge,
			opts.Derating,
		),
		Headroom: opts.Headroom,
		WorthIt:  worthAny,
		Category: "aggregate",
	}
	return recs, agg, nil
}

// FullBatteryJoules returns the nameplate a non-Viyojit deployment needs
// for the same volume (flush everything), for the savings comparison.
func FullBatteryJoules(v *trace.Volume, opts Options) float64 {
	opts = opts.withDefaults()
	return battery.ProvisionFor(
		opts.Power, v.Spec.SizeBytes, opts.SSDWriteBandwidth, v.Spec.SizeBytes,
		opts.DepthOfDischarge, opts.Derating,
	).CapacityJoules
}

// Savings returns 1 − recommended/full nameplate: the battery fraction
// Viyojit eliminates for this volume.
func Savings(r Recommendation, v *trace.Volume, opts Options) float64 {
	full := FullBatteryJoules(v, opts)
	if full <= 0 {
		return 0
	}
	s := 1 - r.Battery.CapacityJoules/full
	if s < 0 {
		return 0
	}
	return s
}
