package health

// Tests for the monitor's fault-tolerant-telemetry intake (the Energy
// source) and for the poisoned-input hardening around BudgetPages /
// RecoveryBudget / config validation.

import (
	"errors"
	"math"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/faultinject"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// fakeEnergy is a swappable EnergySource: tests install fn after the rig
// (and its battery) exist.
type fakeEnergy struct {
	fn func(at sim.Time) float64
}

func (f *fakeEnergy) Sample(at sim.Time) float64 { return f.fn(at) }

// TestMonitorDerivesBudgetFromEnergySource: with an EnergySource
// configured the budget follows the fused estimate, not the battery
// model — and every snapshot records both so the estimate stays
// auditable against ground truth.
func TestMonitorDerivesBudgetFromEnergySource(t *testing.T) {
	src := &fakeEnergy{}
	r := newRig(t, rigOpts{
		pages: 64, budget: 32, targetPages: 32.3,
		// Slow device so the transfer term dominates the fixed overhead
		// and a half-reporting source still covers a nonzero budget.
		ssd:    ssd.Config{WriteBandwidth: 16 << 20},
		health: Config{Energy: src},
	})
	// Honest telemetry first: budget must match the battery-derived one.
	src.fn = func(sim.Time) float64 { return r.batt.EffectiveJoules() }
	r.run(5 * sim.Millisecond)
	if got := r.mgr.DirtyBudget(); got != 32 {
		t.Fatalf("budget %d under honest telemetry, want 32", got)
	}

	// The telemetry turns conservative (fused fell back to a lower
	// bound): the budget shrinks even though the battery is untouched.
	src.fn = func(sim.Time) float64 { return r.batt.EffectiveJoules() / 2 }
	r.run(4 * sim.Millisecond)
	got := r.mgr.DirtyBudget()
	if got >= 32 || got < 1 {
		t.Fatalf("budget %d under half-reporting telemetry, want shrunk into [1,32)", got)
	}

	snaps := r.mon.Snapshots()
	last := snaps[len(snaps)-1]
	wantTrue := r.batt.EffectiveJoules()
	if last.TrueJoules != wantTrue {
		t.Fatalf("snapshot TrueJoules %v, want battery model %v", last.TrueJoules, wantTrue)
	}
	if math.Abs(last.EffectiveJoules-wantTrue/2) > 1e-9 {
		t.Fatalf("snapshot EffectiveJoules %v, want telemetry value %v", last.EffectiveJoules, wantTrue/2)
	}
	if !(last.EffectiveJoules < last.TrueJoules) {
		t.Fatal("conservative estimate not below ground truth in snapshot")
	}
}

// TestPoisonedWindowResetNotEmergency is the first-sample-edge
// regression: a transient fault burst that lands BEFORE the device has
// banked any good samples leaves the measurement window full of
// zero-goodput entries. Once the device heals (error streak back to
// zero), that stale window must not hold the measured-scaled budget at
// zero and fire a spurious EmergencyFlush the moment a page goes dirty
// — the monitor discards the window (ResetMeasurement) and re-derives
// from the wear model instead.
func TestPoisonedWindowResetNotEmergency(t *testing.T) {
	r := newRig(t, rigOpts{
		pages: 16, budget: 4, targetPages: 4.5,
		health: Config{
			Interval: sim.Millisecond,
			// Keep the streak-based escalation out of the way: this test
			// is about the budget-collapse path only.
			EmergencyErrorStreak: 1000,
		},
	})
	// The very first writes the device ever sees all fail: the window's
	// oldest samples are the burst, with no good history before it.
	inj := faultinject.New(faultinject.Config{})
	inj.FailNextWrites(30)
	r.dev.SetFaultInjector(inj)
	for p := 0; p < 4; p++ {
		r.writePage(t, p, byte(p+1))
	}
	// Ride out the burst until the injector exhausts and the error
	// streak clears. (Dirty pages under budget stay dirty — that is
	// normal operation, not a stuck drain.)
	deadline := r.clock.Now().Add(60 * sim.Millisecond)
	for r.clock.Now() < deadline && r.mgr.ErrorStreak() > 0 {
		r.run(sim.Millisecond)
	}
	if r.mgr.ErrorStreak() != 0 {
		t.Fatalf("device did not heal: streak %d", r.mgr.ErrorStreak())
	}

	// Healed device, poisoned window. New dirtiness must ride the
	// wear-model budget, not trip an emergency.
	r.writePage(t, 5, 0xAA)
	r.run(3 * sim.Millisecond)

	st := r.mon.Stats()
	if st.EmergencyEnters != 0 {
		t.Fatalf("EmergencyEnters = %d after the device healed, want 0 (spurious emergency from stale window)", st.EmergencyEnters)
	}
	if st.MeasurementResets == 0 {
		t.Fatal("poisoned measurement window was never reset")
	}
	if hs := r.mgr.HealthState(); hs != core.StateHealthy && hs != core.StateDegraded {
		t.Fatalf("state %v, want Healthy or Degraded", hs)
	}
	if b := r.mon.LastBudget(); b < 1 {
		t.Fatalf("budget %d after reset, want >= 1", b)
	}
}

func TestBudgetPagesRejectsPoisonedInputs(t *testing.T) {
	pm := power.Default()
	const (
		bw       = int64(100 << 20)
		dram     = int64(64 * 4096)
		pageSize = 4096
		overhead = 500 * sim.Microsecond
	)
	good := BudgetPages(pm, 50, bw, dram, pageSize, overhead)
	if good < 1 {
		t.Fatalf("sanity: healthy inputs gave budget %d", good)
	}
	for _, j := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0} {
		if got := BudgetPages(pm, j, bw, dram, pageSize, overhead); got != 0 {
			t.Errorf("BudgetPages(joules=%v) = %d, want 0", j, got)
		}
	}
	if got := BudgetPages(pm, 50, 0, dram, pageSize, overhead); got != 0 {
		t.Errorf("BudgetPages(bandwidth=0) = %d, want 0", got)
	}
	if got := BudgetPages(pm, 50, -5, dram, pageSize, overhead); got != 0 {
		t.Errorf("BudgetPages(bandwidth<0) = %d, want 0", got)
	}
}

func TestRecoveryBudgetNaNScale(t *testing.T) {
	pm := power.Default()
	const (
		bw       = int64(100 << 20)
		dram     = int64(64 * 4096)
		pageSize = 4096
		overhead = 500 * sim.Microsecond
	)
	full := RecoveryBudget(pm, 50, 1, bw, dram, pageSize, overhead)
	for _, scale := range []float64{math.NaN(), 0, -0.5, 2} {
		if got := RecoveryBudget(pm, 50, scale, bw, dram, pageSize, overhead); got != full {
			t.Errorf("RecoveryBudget(scale=%v) = %d, want clamped to scale 1 = %d", scale, got, full)
		}
	}
	// Dead battery still floors at one page: zero would deadlock replay.
	if got := RecoveryBudget(pm, 0, 0.5, bw, dram, pageSize, overhead); got != 1 {
		t.Errorf("RecoveryBudget(joules=0) = %d, want floor 1", got)
	}
	if got := RecoveryBudget(pm, math.NaN(), 0.5, bw, dram, pageSize, overhead); got != 1 {
		t.Errorf("RecoveryBudget(joules=NaN) = %d, want floor 1", got)
	}
}

func TestConfigValidateRejectsNaN(t *testing.T) {
	cases := []Config{
		{BandwidthDerating: math.NaN()},
		{BandwidthDerating: -0.5},
		{BandwidthDerating: 1.5},
		{FlushOverhead: -sim.Millisecond},
	}
	for _, c := range cases {
		if err := c.withDefaults().validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("validate(%+v) = %v, want ErrConfig", c, err)
		}
	}
	if err := (Config{}).withDefaults().validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}
