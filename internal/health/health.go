// Package health closes the provisioning loop the paper leaves open: it
// continuously re-derives the dirty budget from the *live* battery and
// SSD, and drives the manager through the degradation ladder when either
// input decays past what normal operation can absorb.
//
// The paper derives the budget once, at install time, from battery
// joules × power model × SSD write bandwidth. Both inputs are runtime
// signals in deployment: batteries age and derate (paper §2.2), and SSD
// write bandwidth degrades with wear. A Monitor samples them on the sim
// clock every Interval:
//
//   - battery effective joules (after depth-of-discharge and derating),
//   - the SSD's wear-modelled bandwidth (ssd.EffectiveWriteBandwidth)
//     scaled by the *measured* per-IO goodput relative to what the model
//     predicts — so a device slower or flakier than its spec sheet
//     shrinks the budget even before its wear counters say it should,
//   - the manager's clean-error streak.
//
// From those it recomputes the budget (growth applies immediately,
// shrink is the manager's staged drain) and escalates or recovers on the
// ladder: a battery that cannot cover even one page, or an SSD erroring
// persistently, triggers EmergencyFlush; repeated failed drains mark the
// device dead and fall back to ReadOnly; sustained good samples Resume
// under hysteresis.
package health

import (
	"errors"
	"fmt"
	"math"

	"viyojit/internal/battery"
	"viyojit/internal/core"
	"viyojit/internal/obs"
	"viyojit/internal/power"
	"viyojit/internal/sim"
)

// ErrConfig is the sentinel every monitor configuration-validation
// error wraps; test with errors.Is. A faulty sensor or operator input
// must be rejected here — NaN or Inf reaching BudgetPages would poison
// the budget math silently.
var ErrConfig = errors.New("health: invalid config")

// EnergySource is the telemetry channel the monitor derives the budget
// from: Sample returns the usable-energy estimate in joules at virtual
// time at. *sensor.Fused implements it; when none is configured the
// monitor falls back to reading the battery model directly (trusting a
// single gauge).
type EnergySource interface {
	Sample(at sim.Time) float64
}

// Config tunes the monitor. Zero values select the documented defaults.
type Config struct {
	// Interval is the sampling period on the sim clock; 0 selects 2 ms
	// (a couple of manager epochs).
	Interval sim.Duration
	// BandwidthDerating is the conservative fraction applied to the
	// bandwidth estimate before converting joules to pages (§5.1 calls
	// for a conservative estimate); 0 selects 0.8.
	BandwidthDerating float64
	// FlushOverhead is the fixed flush-time allowance reserved before
	// converting energy into pages (per-IO latency, protection changes,
	// scheduling slack); 0 selects 500 µs.
	FlushOverhead sim.Duration
	// EmergencyErrorStreak is the clean-error streak at a sample that
	// escalates to EmergencyFlush; 0 selects 6 (twice the default
	// Degraded threshold).
	EmergencyErrorStreak int
	// DrainAttempts is how many consecutive samples an emergency drain
	// may fail to empty the dirty set before the SSD is declared dead
	// and the ladder drops to ReadOnly; 0 selects 2.
	DrainAttempts int
	// RecoverTicks is the resume hysteresis: consecutive good samples
	// (drain complete, budget positive, no fresh errors) required at
	// EmergencyFlush before writes unblock; 0 selects 2.
	RecoverTicks int
	// MaxSnapshots bounds the observability ring; 0 selects 1024.
	MaxSnapshots int
	// ScrubDegradeDetections is the number of fresh scrub corruption
	// detections between samples that enters Degraded (extra cleaning
	// headroom while the device proves itself); 0 selects 1 — any
	// detection costs the device its clean bill of health.
	ScrubDegradeDetections int
	// ScrubQuarantineEmergency is the quarantined-page count (corrupt
	// with no good copy to repair from) that escalates to
	// EmergencyFlush: a device accumulating unrepairable corruption is
	// lying about acked writes, and shrinking exposure to zero is the
	// only safe posture. 0 selects 8.
	ScrubQuarantineEmergency int
	// Obs is the observability registry the monitor mirrors its
	// counters and live inputs (battery energy, bandwidth estimate,
	// derived budget) onto. nil disables the mirror.
	Obs *obs.Registry
	// Energy is the fault-tolerant telemetry the budget is derived
	// from (viyojit.System passes the fused sensor). nil reads the
	// battery model directly — a single unguarded gauge.
	Energy EnergySource
}

func (c Config) withDefaults() Config {
	if c.Interval == 0 {
		c.Interval = 2 * sim.Millisecond
	}
	if c.BandwidthDerating == 0 {
		c.BandwidthDerating = 0.8
	}
	if c.FlushOverhead == 0 {
		c.FlushOverhead = 500 * sim.Microsecond
	}
	if c.EmergencyErrorStreak == 0 {
		c.EmergencyErrorStreak = 6
	}
	if c.DrainAttempts == 0 {
		c.DrainAttempts = 2
	}
	if c.RecoverTicks == 0 {
		c.RecoverTicks = 2
	}
	if c.MaxSnapshots == 0 {
		c.MaxSnapshots = 1024
	}
	if c.ScrubDegradeDetections == 0 {
		c.ScrubDegradeDetections = 1
	}
	if c.ScrubQuarantineEmergency == 0 {
		c.ScrubQuarantineEmergency = 8
	}
	return c
}

func (c Config) validate() error {
	if c.Interval <= 0 {
		return fmt.Errorf("%w: interval %v must be positive", ErrConfig, c.Interval)
	}
	// NaN fails every ordered comparison, so the range check below
	// would wave it through; reject explicitly.
	if math.IsNaN(c.BandwidthDerating) || c.BandwidthDerating <= 0 || c.BandwidthDerating > 1 {
		return fmt.Errorf("%w: bandwidth derating %v outside (0,1]", ErrConfig, c.BandwidthDerating)
	}
	if c.FlushOverhead < 0 {
		return fmt.Errorf("%w: flush overhead %v must be non-negative", ErrConfig, c.FlushOverhead)
	}
	return nil
}

// Policy is the runtime-tunable subset of Config: how conservatively
// the monitor converts its live inputs into a budget. Operators adjust
// it without restarting the monitor (System.SetBudgetPolicy).
type Policy struct {
	// BandwidthDerating as in Config.BandwidthDerating.
	BandwidthDerating float64
	// FlushOverhead as in Config.FlushOverhead.
	FlushOverhead sim.Duration
}

// SetPolicy replaces the monitor's derivation knobs; the next tick uses
// them. Zero fields keep their current values.
func (m *Monitor) SetPolicy(p Policy) error {
	next := m.cfg
	if p.BandwidthDerating != 0 {
		next.BandwidthDerating = p.BandwidthDerating
	}
	if p.FlushOverhead != 0 {
		next.FlushOverhead = p.FlushOverhead
	}
	if err := next.validate(); err != nil {
		return err
	}
	m.cfg = next
	return nil
}

// Snapshot is one monitor sample — what the monitor saw and what it did.
type Snapshot struct {
	At sim.Time
	// State is the ladder rung after this sample's actions.
	State core.HealthState
	// EffectiveJoules is the usable-energy estimate the budget was
	// derived from at the sample: the fused sensor estimate when an
	// EnergySource is configured, the raw battery model otherwise.
	EffectiveJoules float64
	// TrueJoules is the battery model's actual usable energy at the
	// sample — ground truth the telemetry estimate is audited against.
	// Equal to EffectiveJoules when no EnergySource is configured.
	TrueJoules float64
	// BandwidthEstimate is the derated bytes/sec used for the budget.
	BandwidthEstimate int64
	// MeasuredBandwidth is the raw per-IO goodput from the SSD's
	// measurement window (0 with too few samples).
	MeasuredBandwidth int64
	// WearCycles is the SSD's accumulated full-capacity write passes.
	WearCycles float64
	// Budget is the derived dirty budget in pages.
	Budget int
	// Dirty and Draining mirror the manager at the sample.
	Dirty    int
	Draining bool
	// ErrorStreak is the manager's consecutive clean failures.
	ErrorStreak int
	// ScrubDetections is the scrubber's cumulative corruption
	// detections at the sample (0 with no scrubber attached).
	ScrubDetections uint64
	// ScrubQuarantined is the scrubber's current quarantine size.
	ScrubQuarantined int
}

// Stats counts monitor activity.
type Stats struct {
	Ticks            uint64
	Retunes          uint64 // budget values pushed to the manager
	EmergencyEnters  uint64
	DrainFailures    uint64
	ReadOnlyFalls    uint64
	Recoveries       uint64
	ScrubDegrades    uint64 // Degraded entries driven by fresh scrub detections
	ScrubEmergencies uint64 // EmergencyFlush escalations driven by quarantine growth
	// MeasurementResets counts poisoned-measurement-window resets on
	// the non-emergency path: the measured-scaled budget collapsed
	// below one page while the device showed no live errors and the
	// wear model still supported writing, so the stale window (filled
	// by a past fault burst, possibly before the first good sample)
	// was discarded instead of being allowed to drive a spurious
	// emergency.
	MeasurementResets uint64
}

// ScrubStatus is the scrubber-side signal surface the monitor samples —
// implemented by *scrub.Scrubber. Detections are cumulative; the
// quarantine size is current.
type ScrubStatus interface {
	ScrubErrors() (detections uint64, quarantined int)
}

// Monitor periodically re-derives the dirty budget and operates the
// degradation ladder. It is single-goroutine like the rest of the
// simulation.
type Monitor struct {
	events *sim.Queue
	batt   *battery.Battery
	mgr    *core.Manager
	pm     power.Model
	cfg    Config

	lastBudget    int
	drainFails    int
	recoverStreak int
	snapshots     []Snapshot
	event         *sim.Event
	closed        bool
	stats         Stats

	scrub           ScrubStatus // nil = no scrub signal
	lastDetections  uint64      // detections seen at the previous sample
	lastQuarantined int         // quarantine size at the previous sample

	// Registry mirror (nil-safe; Stats stays the source of truth).
	st instruments
}

type instruments struct {
	ticks             *obs.Counter
	retunes           *obs.Counter
	emergencyEnters   *obs.Counter
	drainFailures     *obs.Counter
	readOnlyFalls     *obs.Counter
	recoveries        *obs.Counter
	scrubDegrades     *obs.Counter
	scrubEmergencies  *obs.Counter
	measurementResets *obs.Counter

	effectiveMillijoules *obs.Gauge
	bandwidthEstimate    *obs.Gauge
	derivedBudget        *obs.Gauge
	budgetMillijoules    *obs.Gauge
}

func newInstruments(r *obs.Registry) instruments {
	if r == nil {
		return instruments{}
	}
	return instruments{
		ticks:                r.Counter("health_ticks_total"),
		retunes:              r.Counter("health_retunes_total"),
		emergencyEnters:      r.Counter("health_emergency_enters_total"),
		drainFailures:        r.Counter("health_drain_failures_total"),
		readOnlyFalls:        r.Counter("health_readonly_falls_total"),
		recoveries:           r.Counter("health_recoveries_total"),
		scrubDegrades:        r.Counter("health_scrub_degrades_total"),
		scrubEmergencies:     r.Counter("health_scrub_emergencies_total"),
		measurementResets:    r.Counter("health_measurement_resets_total"),
		effectiveMillijoules: r.Gauge("battery_effective_millijoules"),
		bandwidthEstimate:    r.Gauge("health_bandwidth_estimate_bytes"),
		derivedBudget:        r.Gauge("health_derived_budget_pages"),
		budgetMillijoules:    r.Gauge("health_budget_millijoules"),
	}
}

// AttachScrub wires a scrubber's error signal into the monitor's ladder
// decisions: fresh detections between samples enter Degraded, and a
// quarantine past ScrubQuarantineEmergency escalates to EmergencyFlush.
// Passing nil detaches.
func (m *Monitor) AttachScrub(s ScrubStatus) {
	m.scrub = s
	m.lastDetections = 0
	if s != nil {
		m.lastDetections, _ = s.ScrubErrors()
	}
}

// NewMonitor wires a monitor over an already-running manager and battery
// and arms its first tick one Interval from now.
func NewMonitor(events *sim.Queue, clock *sim.Clock, batt *battery.Battery, mgr *core.Manager, pm power.Model, cfg Config) (*Monitor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	m := &Monitor{
		events:     events,
		batt:       batt,
		mgr:        mgr,
		pm:         pm,
		cfg:        cfg,
		lastBudget: mgr.DirtyBudget(),
		st:         newInstruments(cfg.Obs),
	}
	m.schedule(clock.Now().Add(cfg.Interval))
	return m, nil
}

// Close disarms the monitor.
func (m *Monitor) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.events.Cancel(m.event)
}

// Stats returns a snapshot of the counters.
func (m *Monitor) Stats() Stats { return m.stats }

// Snapshots returns the recorded sample ring, oldest first.
func (m *Monitor) Snapshots() []Snapshot {
	out := make([]Snapshot, len(m.snapshots))
	copy(out, m.snapshots)
	return out
}

// LastBudget returns the most recent budget the monitor derived.
func (m *Monitor) LastBudget() int { return m.lastBudget }

func (m *Monitor) schedule(at sim.Time) {
	m.event = m.events.Schedule(at, func(t sim.Time) {
		if m.closed {
			return
		}
		m.tick(t)
		m.schedule(t.Add(m.cfg.Interval))
	})
}

// BudgetPages converts effective battery joules into a dirty budget the
// same way viyojit.New does at construction: reserve the fixed flush
// overhead, convert the remaining runtime into bytes at the (already
// derated) bandwidth, cap at the region size. Exposed so provisioning
// tools (cmd/battery-calc) print exactly the trajectory the monitor
// computes at runtime.
func BudgetPages(pm power.Model, effectiveJoules float64, bandwidth, dramBytes int64, pageSize int, overhead sim.Duration) int {
	if bandwidth <= 0 || pageSize <= 0 {
		return 0
	}
	// A poisoned energy input (NaN from broken sensor math, Inf from an
	// overflowed integrator, a negative residual) must collapse to the
	// safe answer — zero pages — not propagate: NaN in particular would
	// sail through the ordered comparisons below (every one is false)
	// and emerge as a garbage page count.
	if math.IsNaN(effectiveJoules) || math.IsInf(effectiveJoules, 0) || effectiveJoules <= 0 {
		return 0
	}
	watts := pm.FlushWatts(dramBytes)
	if math.IsNaN(watts) || watts <= 0 {
		return 0
	}
	seconds := effectiveJoules/watts - overhead.Seconds()
	if math.IsNaN(seconds) || seconds <= 0 {
		return 0
	}
	// The epsilon absorbs float round-off when the energy was computed
	// for an exact page count (JoulesForPages round-trips).
	pages := int(seconds*float64(bandwidth)/float64(pageSize) + 1e-9)
	if max := int(dramBytes / int64(pageSize)); pages > max {
		pages = max
	}
	return pages
}

// RecoveryBudget is the dirty budget a recovery attempt runs under:
// BudgetPages re-derived from the *current* (possibly aged or sagged)
// battery energy, scaled by a further safety factor for the
// cascading-outage regime — recovery after an outage runs on less
// energy than the run that crashed, and a replay sized to the old
// budget would dirty more than a re-failure could flush. The result is
// floored at one page: a zero budget would deadlock replay outright,
// and a single-page budget degrades to fully-synchronous redo, which is
// slow but safe.
func RecoveryBudget(pm power.Model, effectiveJoules, scale float64, bandwidth, dramBytes int64, pageSize int, overhead sim.Duration) int {
	// NaN scale would fail both range checks and then poison the
	// multiply; !(scale > 0) catches it alongside the non-positives.
	if !(scale > 0) || scale > 1 {
		scale = 1
	}
	pages := int(float64(BudgetPages(pm, effectiveJoules, bandwidth, dramBytes, pageSize, overhead)) * scale)
	if pages < 1 {
		pages = 1
	}
	return pages
}

// bandwidthEstimate is the monitor's live bandwidth input: the SSD's
// wear-modelled sustained bandwidth, scaled down further when the
// *measured* per-IO goodput falls short of what the device model
// predicts for page-sized IOs. The relative comparison matters: even a
// healthy device measures far below its sustained bandwidth on 4 KiB
// IOs (per-IO latency dominates), so the measured figure only bites as
// a ratio against that expectation — a device erroring or stalling
// measures slow relative to its own spec and the budget shrinks before
// the wear counters say it should.
func (m *Monitor) bandwidthEstimate() (estimate, measured int64) {
	dev := m.mgr.SSD()
	eff := dev.EffectiveWriteBandwidth()
	measured = dev.MeasuredWriteBandwidth()
	scaled := float64(eff)
	if measured > 0 {
		devCfg := dev.Config()
		perIO := devCfg.PerIOLatency.Seconds() + float64(devCfg.PageSize)/float64(eff)
		expected := float64(devCfg.PageSize) / perIO
		if ratio := float64(measured) / expected; ratio < 1 {
			scaled *= ratio
		}
	}
	return int64(scaled * m.cfg.BandwidthDerating), measured
}

// tick is one monitor sample: derive the budget, retune or escalate,
// and record a snapshot.
func (m *Monitor) tick(at sim.Time) {
	m.stats.Ticks++
	m.st.ticks.Inc()
	trueJoules := m.batt.EffectiveJoules()
	joules := trueJoules
	if m.cfg.Energy != nil {
		// Budget from fused conservative telemetry, never a single
		// gauge: the sensor may under-report (costing budget pages) but
		// never over-reports beyond its configured bound, so dirty ≤
		// budget keeps implying flush-within-true-energy even when a
		// gauge lies.
		joules = m.cfg.Energy.Sample(at)
	}
	bw, measured := m.bandwidthEstimate()
	region := m.mgr.Region()
	budget := BudgetPages(m.pm, joules, bw, region.Size(), region.PageSize(), m.cfg.FlushOverhead)
	m.st.effectiveMillijoules.Set(int64(trueJoules * 1000))
	m.st.budgetMillijoules.Set(int64(joules * 1000))
	m.st.bandwidthEstimate.Set(bw)

	// Poisoned-measurement-window guard: a fault burst — possibly
	// striking before the first good sample — can leave the window
	// full of zero-goodput entries whose ratio drives the measured
	// budget to 0 pages long after the device recovered. If the device
	// shows no live errors and the wear model alone still supports at
	// least one page, the window is stale evidence: discard it (the
	// same ResetMeasurement pattern the emergency-recovery gate uses)
	// and derive this tick's budget from the wear model, instead of
	// letting a dead window drive a spurious emergency. Only on the
	// lower rungs — the emergency path has its own wear-model gate.
	if hs := m.mgr.HealthState(); budget < 1 && measured > 0 && m.mgr.ErrorStreak() == 0 &&
		(hs == core.StateHealthy || hs == core.StateDegraded) {
		wearBW := int64(float64(m.mgr.SSD().EffectiveWriteBandwidth()) * m.cfg.BandwidthDerating)
		if wearBudget := BudgetPages(m.pm, joules, wearBW, region.Size(), region.PageSize(), m.cfg.FlushOverhead); wearBudget >= 1 {
			m.mgr.SSD().ResetMeasurement()
			m.stats.MeasurementResets++
			m.st.measurementResets.Inc()
			budget, bw = wearBudget, wearBW
		}
	}
	m.lastBudget = budget
	m.st.derivedBudget.Set(int64(budget))

	// Sample the scrub signal every tick so the fresh-detection delta
	// stays aligned with the sampling period whatever rung we're on.
	var scrubDetections uint64
	var freshDetections uint64
	var quarantined int
	quarantineGrew := false
	if m.scrub != nil {
		scrubDetections, quarantined = m.scrub.ScrubErrors()
		freshDetections = scrubDetections - m.lastDetections
		m.lastDetections = scrubDetections
		quarantineGrew = quarantined > m.lastQuarantined
		m.lastQuarantined = quarantined
	}

	switch m.mgr.HealthState() {
	case core.StateReadOnly:
		// Terminal without operator intervention (SSD replacement would
		// come with an explicit Resume); keep observing.

	case core.StateEmergencyFlush:
		remaining := m.mgr.RetryDrain()
		if remaining > 0 {
			m.stats.DrainFailures++
			m.st.drainFailures.Inc()
			m.drainFails++
			if m.drainFails >= m.cfg.DrainAttempts {
				m.mgr.EnterReadOnly()
				m.stats.ReadOnlyFalls++
				m.st.readOnlyFalls.Inc()
			}
			m.recoverStreak = 0
			break
		}
		// Drained. Resume only once the inputs support writing again,
		// and only after RecoverTicks consecutive good samples. The
		// recovery gate judges the budget on the wear-model bandwidth,
		// not the measured one: the measurement window is full of the
		// outage's zero-goodput samples, and with writes blocked no new
		// samples can displace them — the completed drain is the direct
		// evidence the device writes again.
		wearBW := int64(float64(m.mgr.SSD().EffectiveWriteBandwidth()) * m.cfg.BandwidthDerating)
		recoveryBudget := BudgetPages(m.pm, joules, wearBW, region.Size(), region.PageSize(), m.cfg.FlushOverhead)
		if recoveryBudget >= 1 && m.mgr.ErrorStreak() == 0 {
			m.recoverStreak++
			if m.recoverStreak >= m.cfg.RecoverTicks {
				// Come back at Degraded, not Healthy: the lower rungs'
				// own hysteresis decides when the device is trusted
				// again. Restart measurement so the next ticks derive
				// the budget from fresh samples, not the outage's.
				m.mgr.SSD().ResetMeasurement()
				_ = m.mgr.Resume(core.StateDegraded)
				m.stats.Recoveries++
				m.st.recoveries.Inc()
				m.drainFails = 0
				m.recoverStreak = 0
				m.retune(recoveryBudget)
			}
		} else {
			m.recoverStreak = 0
		}

	default: // Healthy, Degraded
		scrubEmergency := quarantined >= m.cfg.ScrubQuarantineEmergency && quarantineGrew
		if m.mgr.ErrorStreak() >= m.cfg.EmergencyErrorStreak || (budget < 1 && m.mgr.DirtyCount() > 0) ||
			scrubEmergency {
			if scrubEmergency {
				m.stats.ScrubEmergencies++
				m.st.scrubEmergencies.Inc()
			}
			m.drainFails = 0
			m.recoverStreak = 0
			m.stats.EmergencyEnters++
			m.st.emergencyEnters.Inc()
			if m.mgr.EnterEmergencyFlush() > 0 {
				m.stats.DrainFailures++
				m.st.drainFailures.Inc()
				m.drainFails++
			}
			break
		}
		if freshDetections >= uint64(m.cfg.ScrubDegradeDetections) && m.mgr.HealthState() == core.StateHealthy {
			// The scrubber caught the device silently corrupting data:
			// take the Degraded rung's extra cleaning headroom while the
			// usual success-streak/quiet-period hysteresis decides when
			// it is trusted again.
			m.mgr.EnterDegraded()
			m.stats.ScrubDegrades++
			m.st.scrubDegrades.Inc()
		}
		if budget >= 1 {
			m.retune(budget)
		}
	}

	m.record(Snapshot{
		At:                at,
		State:             m.mgr.HealthState(),
		EffectiveJoules:   joules,
		TrueJoules:        trueJoules,
		BandwidthEstimate: bw,
		MeasuredBandwidth: measured,
		WearCycles:        m.mgr.SSD().WearCycles(),
		Budget:            budget,
		Dirty:             m.mgr.DirtyCount(),
		Draining:          m.mgr.Draining(),
		ErrorStreak:       m.mgr.ErrorStreak(),
		ScrubDetections:   scrubDetections,
		ScrubQuarantined:  quarantined,
	})
}

func (m *Monitor) retune(budget int) {
	if budget == m.mgr.DirtyBudget() {
		return
	}
	if err := m.mgr.SetDirtyBudget(budget); err == nil {
		m.stats.Retunes++
		m.st.retunes.Inc()
	}
}

func (m *Monitor) record(s Snapshot) {
	m.snapshots = append(m.snapshots, s)
	if len(m.snapshots) > m.cfg.MaxSnapshots {
		m.snapshots = m.snapshots[len(m.snapshots)-m.cfg.MaxSnapshots:]
	}
}
