package health

import (
	"errors"
	"testing"

	"viyojit/internal/battery"
	"viyojit/internal/core"
	"viyojit/internal/faultinject"
	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// rig is a monitor over a minimal simulated stack. Unlike the viyojit
// facade it wires NO battery observers: every retune in these tests is
// the monitor's own doing.
type rig struct {
	clock  *sim.Clock
	events *sim.Queue
	region *nvdram.Region
	dev    *ssd.SSD
	mgr    *core.Manager
	batt   *battery.Battery
	mon    *Monitor
	pm     power.Model
}

// rigOpts: budget is the manager's installed budget; targetPages sizes
// the battery to cover that many pages (fractional, so floor effects
// land inside a whole budget) at the monitor's derated bandwidth.
type rigOpts struct {
	pages       int
	budget      int
	targetPages float64
	ssd         ssd.Config
	health      Config
}

func newRig(t *testing.T, o rigOpts) *rig {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: int64(o.pages) * 4096})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, o.ssd)
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: o.budget})
	if err != nil {
		t.Fatal(err)
	}
	pm := power.Default()
	hcfg := o.health.withDefaults()
	bw := float64(dev.EffectiveWriteBandwidth()) * hcfg.BandwidthDerating
	joules := pm.FlushWatts(region.Size()) *
		(hcfg.FlushOverhead.Seconds() + o.targetPages*4096/bw)
	batt := battery.MustNew(battery.Config{CapacityJoules: joules, DepthOfDischarge: 1, Derating: 1})
	mon, err := NewMonitor(events, clock, batt, mgr, pm, o.health)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, events: events, region: region, dev: dev,
		mgr: mgr, batt: batt, mon: mon, pm: pm}
}

func (r *rig) writePage(t *testing.T, page int, marker byte) {
	t.Helper()
	if err := r.region.WriteAt([]byte{marker}, int64(page)*4096); err != nil {
		t.Fatalf("write page %d: %v", page, err)
	}
	r.mgr.Pump()
}

// run advances virtual time by d, firing monitor ticks, epochs, and IO
// completions.
func (r *rig) run(d sim.Duration) {
	r.events.RunUntil(r.clock, r.clock.Now().Add(d))
}

func TestMonitorRetunesOnBatterySag(t *testing.T) {
	r := newRig(t, rigOpts{
		pages: 64, budget: 32, targetPages: 32.3,
		// Slow device so the transfer term dominates the fixed overhead
		// and a halved battery still covers a nonzero budget.
		ssd: ssd.Config{WriteBandwidth: 16 << 20},
	})
	r.run(5 * sim.Millisecond) // two default-interval ticks
	if got := r.mgr.DirtyBudget(); got != 32 {
		t.Fatalf("budget drifted to %d on a healthy battery, want 32", got)
	}
	if err := r.batt.SetCapacityJoules(r.batt.NameplateJoules() / 2); err != nil {
		t.Fatal(err)
	}
	r.run(4 * sim.Millisecond)
	got := r.mgr.DirtyBudget()
	if got >= 32 || got < 1 {
		t.Fatalf("budget after 50%% battery sag = %d, want shrunk into [1,32)", got)
	}
	if r.mon.LastBudget() != got {
		t.Fatalf("LastBudget %d diverges from manager budget %d", r.mon.LastBudget(), got)
	}
	if r.mon.Stats().Retunes == 0 {
		t.Fatal("no retune counted")
	}
	snaps := r.mon.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no snapshots recorded")
	}
	last := snaps[len(snaps)-1]
	if last.Budget != got || last.State != core.StateHealthy {
		t.Fatalf("last snapshot budget %d state %v, want %d Healthy", last.Budget, last.State, got)
	}
}

func TestMonitorEscalatesToReadOnlyOnDeadSSD(t *testing.T) {
	r := newRig(t, rigOpts{
		pages: 16, budget: 4, targetPages: 4.5,
		health: Config{Interval: sim.Millisecond, EmergencyErrorStreak: 3, DrainAttempts: 2},
	})
	for p := 0; p < 4; p++ {
		r.writePage(t, p, byte(p+1))
	}
	inj := faultinject.New(faultinject.Config{TransientProb: 1}) // dead forever
	r.dev.SetFaultInjector(inj)

	deadline := sim.Time(60 * sim.Millisecond)
	for r.clock.Now() < deadline && r.mgr.HealthState() != core.StateReadOnly {
		r.run(sim.Millisecond)
	}
	if st := r.mgr.HealthState(); st != core.StateReadOnly {
		t.Fatalf("state %v after 60 ms against a dead SSD, want ReadOnly", st)
	}
	st := r.mon.Stats()
	if st.EmergencyEnters != 1 {
		t.Fatalf("EmergencyEnters = %d, want 1", st.EmergencyEnters)
	}
	if st.ReadOnlyFalls != 1 {
		t.Fatalf("ReadOnlyFalls = %d, want 1", st.ReadOnlyFalls)
	}
	if st.DrainFailures < uint64(2) {
		t.Fatalf("DrainFailures = %d, want ≥ 2", st.DrainFailures)
	}
	if err := r.region.WriteAt([]byte{0xEE}, 0); !errors.Is(err, mmu.ErrProtected) {
		t.Fatalf("write in ReadOnly: err %v, want ErrProtected", err)
	}
	// ReadOnly is terminal for the monitor: more ticks change nothing.
	r.run(5 * sim.Millisecond)
	if got := r.mon.Stats().ReadOnlyFalls; got != 1 {
		t.Fatalf("ReadOnlyFalls grew to %d while already ReadOnly", got)
	}
}

func TestMonitorRecoveryHysteresis(t *testing.T) {
	r := newRig(t, rigOpts{
		pages: 16, budget: 4, targetPages: 4.5,
		// DrainAttempts high enough that the transient outage never
		// condemns the device to ReadOnly.
		health: Config{Interval: sim.Millisecond, EmergencyErrorStreak: 3,
			DrainAttempts: 100, RecoverTicks: 2},
	})
	for p := 0; p < 4; p++ {
		r.writePage(t, p, byte(p+1))
	}
	inj := faultinject.New(faultinject.Config{TransientProb: 1})
	r.dev.SetFaultInjector(inj)
	deadline := sim.Time(60 * sim.Millisecond)
	for r.clock.Now() < deadline && r.mgr.HealthState() != core.StateEmergencyFlush {
		r.run(sim.Millisecond)
	}
	if st := r.mgr.HealthState(); st != core.StateEmergencyFlush {
		t.Fatalf("state %v, want EmergencyFlush before the repair", st)
	}

	// SSD comes back: the drain completes, and after RecoverTicks good
	// samples the monitor resumes writes at Degraded — not instantly,
	// and not straight to Healthy.
	inj.Disable()
	recoveredAt := r.clock.Now()
	for r.clock.Now() < recoveredAt.Add(20*sim.Millisecond) && r.mgr.WritesBlocked() {
		r.run(sim.Millisecond)
	}
	if r.mgr.WritesBlocked() {
		t.Fatal("writes still blocked 20 ms after the SSD recovered")
	}
	if got := r.mon.Stats().Recoveries; got != 1 {
		t.Fatalf("Recoveries = %d, want 1", got)
	}
	if got := r.mon.Stats().ReadOnlyFalls; got != 0 {
		t.Fatalf("ReadOnlyFalls = %d during a transient outage, want 0", got)
	}
	r.writePage(t, 7, 0x77)
	if r.mgr.DirtyCount() != 1 {
		t.Fatalf("dirty %d after post-recovery write, want 1", r.mgr.DirtyCount())
	}
}

func TestSetPolicy(t *testing.T) {
	r := newRig(t, rigOpts{
		pages: 64, budget: 32, targetPages: 32.3,
		ssd: ssd.Config{WriteBandwidth: 16 << 20},
	})
	r.run(5 * sim.Millisecond)
	if got := r.mgr.DirtyBudget(); got != 32 {
		t.Fatalf("budget %d before policy change, want 32", got)
	}
	// Halving the derating halves the budget's bandwidth term on the
	// next tick.
	if err := r.mon.SetPolicy(Policy{BandwidthDerating: 0.4}); err != nil {
		t.Fatal(err)
	}
	r.run(4 * sim.Millisecond)
	got := r.mgr.DirtyBudget()
	if got >= 32 || got < 8 {
		t.Fatalf("budget after derating 0.8→0.4 = %d, want roughly halved", got)
	}
	if err := r.mon.SetPolicy(Policy{BandwidthDerating: 1.5}); err == nil {
		t.Fatal("derating 1.5 accepted")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	r := newRig(t, rigOpts{pages: 16, budget: 4, targetPages: 4.5})
	if _, err := NewMonitor(r.events, r.clock, r.batt, r.mgr, r.pm, Config{Interval: -1}); err == nil {
		t.Fatal("negative interval accepted")
	}
	if _, err := NewMonitor(r.events, r.clock, r.batt, r.mgr, r.pm, Config{BandwidthDerating: 2}); err == nil {
		t.Fatal("derating 2 accepted")
	}
}

func TestMonitorCloseDisarms(t *testing.T) {
	r := newRig(t, rigOpts{pages: 16, budget: 4, targetPages: 4.5})
	r.run(5 * sim.Millisecond)
	ticks := r.mon.Stats().Ticks
	if ticks == 0 {
		t.Fatal("monitor never ticked")
	}
	r.mon.Close()
	r.run(10 * sim.Millisecond)
	if got := r.mon.Stats().Ticks; got != ticks {
		t.Fatalf("monitor ticked %d more times after Close", got-ticks)
	}
}

func TestBudgetPagesEdges(t *testing.T) {
	pm := power.Default()
	if got := BudgetPages(pm, 100, 0, 1<<30, 4096, 0); got != 0 {
		t.Fatalf("zero bandwidth budget = %d, want 0", got)
	}
	if got := BudgetPages(pm, 0.001, 2<<30, 64<<30, 4096, sim.Second); got != 0 {
		t.Fatalf("overhead-exceeded budget = %d, want 0", got)
	}
	if got := BudgetPages(pm, 1e12, 2<<30, 1<<20, 4096, 0); got != 256 {
		t.Fatalf("budget with a huge battery = %d, want capped at 256 region pages", got)
	}
}

func TestRecoveryBudget(t *testing.T) {
	pm := power.Default()
	full := BudgetPages(pm, 1e12, 2<<30, 1<<20, 4096, 0) // 256, region-capped
	if got := RecoveryBudget(pm, 1e12, 1.0, 2<<30, 1<<20, 4096, 0); got != full {
		t.Fatalf("unit scale = %d, want %d", got, full)
	}
	if got := RecoveryBudget(pm, 1e12, 0.5, 2<<30, 1<<20, 4096, 0); got != full/2 {
		t.Fatalf("half scale = %d, want %d", got, full/2)
	}
	// Out-of-range scales fall back to 1.0 rather than zeroing the
	// budget.
	if got := RecoveryBudget(pm, 1e12, 0, 2<<30, 1<<20, 4096, 0); got != full {
		t.Fatalf("zero scale = %d, want %d", got, full)
	}
	if got := RecoveryBudget(pm, 1e12, 1.5, 2<<30, 1<<20, 4096, 0); got != full {
		t.Fatalf("over-unit scale = %d, want %d", got, full)
	}
	// The floor: even a dead battery yields one page, never a deadlocked
	// zero-budget replay.
	if got := RecoveryBudget(pm, 0.001, 0.5, 2<<30, 64<<30, 4096, sim.Second); got != 1 {
		t.Fatalf("dead-battery recovery budget = %d, want floor of 1", got)
	}
}

// fakeScrub is a scriptable ScrubStatus.
type fakeScrub struct {
	det uint64
	q   int
}

func (f *fakeScrub) ScrubErrors() (uint64, int) { return f.det, f.q }

// TestMonitorScrubDetectionsEnterDegraded: fresh scrub detections
// between samples cost the device its clean bill of health; detections
// already seen at attach time do not.
func TestMonitorScrubDetectionsEnterDegraded(t *testing.T) {
	r := newRig(t, rigOpts{pages: 16, budget: 4, targetPages: 4.5})
	fs := &fakeScrub{det: 7} // history predating the attach
	r.mon.AttachScrub(fs)
	r.run(5 * sim.Millisecond)
	if r.mgr.HealthState() != core.StateHealthy {
		t.Fatalf("stale detections degraded the ladder: %v", r.mgr.HealthState())
	}
	fs.det += 2
	r.run(3 * sim.Millisecond)
	if r.mgr.HealthState() != core.StateDegraded {
		t.Fatalf("fresh detections did not enter Degraded: %v", r.mgr.HealthState())
	}
	if r.mon.Stats().ScrubDegrades != 1 {
		t.Fatalf("ScrubDegrades = %d, want 1", r.mon.Stats().ScrubDegrades)
	}
	snaps := r.mon.Snapshots()
	last := snaps[len(snaps)-1]
	if last.ScrubDetections != fs.det || last.ScrubQuarantined != 0 {
		t.Fatalf("snapshot scrub fields %d/%d, want %d/0",
			last.ScrubDetections, last.ScrubQuarantined, fs.det)
	}
	// No further detections: the monitor must not re-degrade forever.
	r.run(5 * sim.Millisecond)
	if r.mon.Stats().ScrubDegrades != 1 {
		t.Fatalf("ScrubDegrades grew to %d on a quiet scrubber", r.mon.Stats().ScrubDegrades)
	}
}

// TestMonitorScrubQuarantineEscalates: a quarantine reaching the
// threshold *while still growing* escalates to EmergencyFlush; a large
// but static quarantine does not keep re-escalating.
func TestMonitorScrubQuarantineEscalates(t *testing.T) {
	r := newRig(t, rigOpts{
		pages: 16, budget: 4, targetPages: 4.5,
		health: Config{ScrubQuarantineEmergency: 3},
	})
	fs := &fakeScrub{}
	r.mon.AttachScrub(fs)
	r.run(5 * sim.Millisecond)
	fs.det, fs.q = 3, 3 // unrepairable corruption accumulating
	r.run(3 * sim.Millisecond)
	if got := r.mgr.HealthState(); got != core.StateEmergencyFlush {
		t.Fatalf("growing quarantine at threshold left state %v, want EmergencyFlush", got)
	}
	if r.mon.Stats().ScrubEmergencies != 1 {
		t.Fatalf("ScrubEmergencies = %d, want 1", r.mon.Stats().ScrubEmergencies)
	}
}
