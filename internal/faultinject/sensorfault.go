package faultinject

import (
	"viyojit/internal/sensor"
	"viyojit/internal/sim"
)

// sensorStreamSalt decorrelates the sensor-fault RNG stream from the
// primary write-fault stream and the silent-fault stream. Sensor
// faults live on their own seeded generator so adding gauge faults to
// a run — or adding this subsystem to the codebase — cannot shift a
// single draw of the legacy schedules: existing sweep modes stay
// bit-identical under their existing seeds.
const sensorStreamSalt = 0x5E45_0E17_FA57_D00D

// SensorFaultClass enumerates the gauge fault models.
type SensorFaultClass int

const (
	// SensorStuck freezes the reading at its onset value: a hung gauge
	// that keeps answering with the last conversion.
	SensorStuck SensorFaultClass = iota
	// SensorDrift inflates the reading by a rate proportional to time
	// since onset: an uncalibrated coulomb counter accumulating error
	// in the dangerous (over-reporting) direction.
	SensorDrift
	// SensorSpike over-reports for a single sample: an ADC glitch.
	SensorSpike
	// SensorDropout answers nothing for the episode: a bus timeout.
	SensorDropout
	// SensorLieHigh over-reports by a fixed fraction for the episode:
	// a mis-programmed or compromised gauge.
	SensorLieHigh
)

// String names the class for logs and audits.
func (c SensorFaultClass) String() string {
	switch c {
	case SensorStuck:
		return "stuck"
	case SensorDrift:
		return "drift"
	case SensorSpike:
		return "spike"
	case SensorDropout:
		return "dropout"
	case SensorLieHigh:
		return "lie-high"
	}
	return "unknown"
}

// SensorConfig tunes the per-sample episode probabilities and shapes.
// Probabilities are evaluated once per Corrupt call while no episode
// is active; at most one episode runs at a time per injector.
type SensorConfig struct {
	// Seed feeds the injector's private RNG stream (salted, so it
	// never correlates with write-fault streams built from the same
	// seed).
	Seed uint64
	// StuckProb..LieProb are per-sample episode-start probabilities.
	StuckProb   float64
	DriftProb   float64
	SpikeProb   float64
	DropoutProb float64
	LieProb     float64
	// LieMagnitude is the maximum fractional over-report of a lie-high
	// episode; each episode draws uniformly in (0, LieMagnitude].
	// 0 selects 0.5 (a gauge lying up to 50% high).
	LieMagnitude float64
	// SpikeMagnitude is the maximum fractional over-report of a spike.
	// 0 selects 0.5.
	SpikeMagnitude float64
	// DriftRatePerSec is the fractional over-report accumulated per
	// second of drift. 0 selects 50 (i.e. +0.5% per 100 µs).
	DriftRatePerSec float64
	// EpisodeMin/EpisodeMax bound episode durations (spikes are always
	// one sample). 0 selects 200 µs / 1 ms.
	EpisodeMin sim.Duration
	EpisodeMax sim.Duration
}

func (c SensorConfig) withDefaults() SensorConfig {
	if c.LieMagnitude == 0 {
		c.LieMagnitude = 0.5
	}
	if c.SpikeMagnitude == 0 {
		c.SpikeMagnitude = 0.5
	}
	if c.DriftRatePerSec == 0 {
		c.DriftRatePerSec = 50
	}
	if c.EpisodeMin == 0 {
		c.EpisodeMin = 200 * sim.Microsecond
	}
	if c.EpisodeMax == 0 {
		c.EpisodeMax = sim.Millisecond
	}
	if c.EpisodeMax < c.EpisodeMin {
		c.EpisodeMax = c.EpisodeMin
	}
	return c
}

// SensorEpisode is one recorded fault episode, kept for MTTD audits.
type SensorEpisode struct {
	Class SensorFaultClass
	// Start is the sample time the episode began; End is the last
	// sample time it covered (Start for spikes).
	Start, End sim.Time
	// Magnitude is the fractional over-report (0 for dropouts; the
	// rate×duration total is not precomputed for drift).
	Magnitude float64
}

// SensorInjector corrupts one estimator's readings with seeded fault
// episodes. It implements sensor.Corruptor. Deterministic: the episode
// schedule is a pure function of (Seed, sequence of Corrupt calls),
// and every call consumes a fixed number of RNG draws regardless of
// outcome, so tuning one probability never reshuffles the others'
// schedules.
type SensorInjector struct {
	cfg      SensorConfig
	rng      *sim.RNG
	active   *SensorEpisode
	stuckVal float64
	episodes []SensorEpisode
	disabled bool
}

// NewSensorInjector builds an injector from cfg.
func NewSensorInjector(cfg SensorConfig) *SensorInjector {
	cfg = cfg.withDefaults()
	return &SensorInjector{
		cfg: cfg,
		rng: sim.NewRNG(cfg.Seed ^ sensorStreamSalt),
	}
}

// Disable stops new episodes and ends the active one; draws keep
// burning so re-enabling later does not shift the schedule.
func (si *SensorInjector) Disable() { si.disabled = true; si.endActive() }

// Enable resumes episode generation.
func (si *SensorInjector) Enable() { si.disabled = false }

// Episodes returns a copy of every recorded episode, oldest first,
// including the currently active one (its End is the last sample so
// far).
func (si *SensorInjector) Episodes() []SensorEpisode {
	out := make([]SensorEpisode, 0, len(si.episodes)+1)
	out = append(out, si.episodes...)
	if si.active != nil {
		out = append(out, *si.active)
	}
	return out
}

func (si *SensorInjector) endActive() {
	if si.active != nil {
		si.episodes = append(si.episodes, *si.active)
		si.active = nil
	}
}

// Corrupt implements sensor.Corruptor. Fixed-draw discipline: exactly
// three draws per call — class roll, magnitude, duration — whether or
// not an episode starts, so schedules are stable under tuning.
func (si *SensorInjector) Corrupt(at sim.Time, truth float64) sensor.Reading {
	// Retire an expired episode before this sample is classified.
	if si.active != nil && at > si.active.End {
		si.endActive()
	}

	roll := si.rng.Float64()
	magRoll := si.rng.Float64()
	durRoll := si.rng.Float64()

	if si.active == nil && !si.disabled {
		c := si.cfg
		dur := c.EpisodeMin + sim.Duration(durRoll*float64(c.EpisodeMax-c.EpisodeMin))
		switch {
		case roll < c.StuckProb:
			si.active = &SensorEpisode{Class: SensorStuck, Start: at, End: at.Add(dur)}
			si.stuckVal = truth
		case roll < c.StuckProb+c.DriftProb:
			si.active = &SensorEpisode{Class: SensorDrift, Start: at, End: at.Add(dur), Magnitude: c.DriftRatePerSec}
		case roll < c.StuckProb+c.DriftProb+c.SpikeProb:
			m := magRoll * c.SpikeMagnitude
			si.active = &SensorEpisode{Class: SensorSpike, Start: at, End: at, Magnitude: m}
		case roll < c.StuckProb+c.DriftProb+c.SpikeProb+c.DropoutProb:
			si.active = &SensorEpisode{Class: SensorDropout, Start: at, End: at.Add(dur)}
		case roll < c.StuckProb+c.DriftProb+c.SpikeProb+c.DropoutProb+c.LieProb:
			m := magRoll * c.LieMagnitude
			si.active = &SensorEpisode{Class: SensorLieHigh, Start: at, End: at.Add(dur), Magnitude: m}
		}
	}

	if si.active == nil {
		return sensor.Reading{Value: truth, OK: true}
	}
	ep := si.active
	switch ep.Class {
	case SensorStuck:
		return sensor.Reading{Value: si.stuckVal, OK: true}
	case SensorDrift:
		grow := 1 + ep.Magnitude*at.Sub(ep.Start).Seconds()
		return sensor.Reading{Value: truth * grow, OK: true}
	case SensorSpike:
		return sensor.Reading{Value: truth * (1 + ep.Magnitude), OK: true}
	case SensorDropout:
		return sensor.Reading{OK: false}
	case SensorLieHigh:
		return sensor.Reading{Value: truth * (1 + ep.Magnitude), OK: true}
	}
	return sensor.Reading{Value: truth, OK: true}
}
