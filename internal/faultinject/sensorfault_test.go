package faultinject

import (
	"testing"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

func sensorSamples(si *SensorInjector, n int, step sim.Duration, truth float64) []float64 {
	out := make([]float64, 0, n)
	for i := 1; i <= n; i++ {
		r := si.Corrupt(sim.Time(i)*sim.Time(step), truth)
		if !r.OK {
			out = append(out, -1)
			continue
		}
		out = append(out, r.Value)
	}
	return out
}

func TestSensorInjectorDeterministic(t *testing.T) {
	cfg := SensorConfig{Seed: 0xFEED, StuckProb: 0.05, DriftProb: 0.05,
		SpikeProb: 0.05, DropoutProb: 0.05, LieProb: 0.05}
	a := NewSensorInjector(cfg)
	b := NewSensorInjector(cfg)
	sa := sensorSamples(a, 500, 100*sim.Microsecond, 80)
	sb := sensorSamples(b, 500, 100*sim.Microsecond, 80)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d diverged: %v vs %v", i, sa[i], sb[i])
		}
	}
	ea, eb := a.Episodes(), b.Episodes()
	if len(ea) == 0 {
		t.Fatal("no episodes with 5% per-class probability over 500 samples")
	}
	if len(ea) != len(eb) {
		t.Fatalf("episode counts diverged: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("episode %d diverged: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// TestSensorInjectorFixedDraws: tuning one class's probability must not
// reshuffle when OTHER classes fire during idle stretches — every
// Corrupt call burns exactly three draws whatever happens. Lie is the
// last band in the roll order, so raising it from zero cannot move the
// stuck band's onsets (episodes themselves exclude each other, but the
// underlying rolls stay aligned).
func TestSensorInjectorFixedDraws(t *testing.T) {
	base := SensorConfig{Seed: 7, StuckProb: 0.03}
	more := base
	more.LieProb = 0.03
	a := NewSensorInjector(base)
	b := NewSensorInjector(more)
	sensorSamples(a, 400, 100*sim.Microsecond, 80)
	sensorSamples(b, 400, 100*sim.Microsecond, 80)

	stuckStarts := func(eps []SensorEpisode) []sim.Time {
		var out []sim.Time
		for _, e := range eps {
			if e.Class == SensorStuck {
				out = append(out, e.Start)
			}
		}
		return out
	}
	// Up to the first lie episode the two runs see identical idle/busy
	// phases, so with aligned draw streams every stuck onset before
	// that point must match exactly. (After a lie fires, the runs'
	// busy windows legitimately diverge — one episode at a time — but
	// only because of the lie itself, never because draws shifted.)
	firstLie := sim.Time(1 << 62)
	for _, e := range b.Episodes() {
		if e.Class == SensorLieHigh {
			firstLie = e.Start
			break
		}
	}
	before := func(ts []sim.Time) []sim.Time {
		var out []sim.Time
		for _, s := range ts {
			if s < firstLie {
				out = append(out, s)
			}
		}
		return out
	}
	sa := before(stuckStarts(a.Episodes()))
	sb := before(stuckStarts(b.Episodes()))
	if len(sa) != len(sb) {
		t.Fatalf("stuck onsets before first lie diverged: %v vs %v", sa, sb)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("stuck onset %d moved: %v vs %v — draw streams shifted", i, sa[i], sb[i])
		}
	}
	if len(sa) == 0 && firstLie == sim.Time(1<<62) {
		t.Fatal("degenerate run: no lies and no stuck onsets to compare")
	}
}

// TestSensorStreamIndependentOfWriteFaults: the sensor injector draws
// from its own salted RNG, so its existence (and its draws) cannot
// shift the write-fault schedule built from the same seed — the
// bit-identical-legacy-schedules guarantee.
func TestSensorStreamIndependentOfWriteFaults(t *testing.T) {
	record := func(withSensor bool) []ssd.FaultDecision {
		inj := New(Config{Seed: 99, TransientProb: 0.1, TornProb: 0.05})
		var si *SensorInjector
		if withSensor {
			si = NewSensorInjector(SensorConfig{Seed: 99, LieProb: 0.2, DropoutProb: 0.2})
		}
		var faults []ssd.FaultDecision
		for i := 0; i < 300; i++ {
			if si != nil {
				si.Corrupt(sim.Time(i)*1000, 50) // interleave sensor draws
			}
			faults = append(faults, inj.WriteFault(mmu.PageID(i%64), nil))
		}
		return faults
	}
	plain := record(false)
	mixed := record(true)
	for i := range plain {
		if plain[i] != mixed[i] {
			t.Fatalf("write-fault decision %d changed when a sensor injector was added", i)
		}
	}
}

func TestSensorInjectorClasses(t *testing.T) {
	const step = 100 * sim.Microsecond
	force := func(c SensorConfig) *SensorInjector {
		c.Seed = 5
		return NewSensorInjector(c)
	}

	t.Run("stuck", func(t *testing.T) {
		si := force(SensorConfig{StuckProb: 1})
		r1 := si.Corrupt(sim.Time(step), 80)
		r2 := si.Corrupt(sim.Time(2*step), 40) // truth halved; stuck must not follow
		if !r1.OK || !r2.OK || r1.Value != 80 || r2.Value != 80 {
			t.Fatalf("stuck readings %+v %+v, want frozen at 80", r1, r2)
		}
	})
	t.Run("drift", func(t *testing.T) {
		si := force(SensorConfig{DriftProb: 1, DriftRatePerSec: 100})
		r1 := si.Corrupt(sim.Time(step), 80)
		r2 := si.Corrupt(sim.Time(2*step), 80)
		if r1.Value != 80 {
			t.Fatalf("drift onset %v, want exact truth 80", r1.Value)
		}
		want := 80 * (1 + 100*sim.Duration(step).Seconds())
		if r2.Value != want {
			t.Fatalf("drift after one step %v, want %v", r2.Value, want)
		}
	})
	t.Run("spike", func(t *testing.T) {
		si := force(SensorConfig{SpikeProb: 1})
		r1 := si.Corrupt(sim.Time(step), 80)
		if !(r1.Value > 80) {
			t.Fatalf("spike reading %v, want above truth", r1.Value)
		}
		eps := si.Episodes()
		if len(eps) != 1 || eps[0].Start != eps[0].End {
			t.Fatalf("spike episode %+v, want single-sample", eps)
		}
	})
	t.Run("dropout", func(t *testing.T) {
		si := force(SensorConfig{DropoutProb: 1})
		if r := si.Corrupt(sim.Time(step), 80); r.OK {
			t.Fatalf("dropout produced a reading: %+v", r)
		}
	})
	t.Run("lie-high", func(t *testing.T) {
		si := force(SensorConfig{LieProb: 1, LieMagnitude: 0.5})
		r := si.Corrupt(sim.Time(step), 80)
		if !(r.Value > 80) || r.Value > 80*1.5 {
			t.Fatalf("lie reading %v, want in (80, 120]", r.Value)
		}
	})
	t.Run("disable", func(t *testing.T) {
		si := force(SensorConfig{LieProb: 1})
		si.Corrupt(sim.Time(step), 80)
		si.Disable()
		if r := si.Corrupt(sim.Time(2*step), 80); r.Value != 80 {
			t.Fatalf("disabled injector still corrupts: %v", r.Value)
		}
		si.Enable()
		if r := si.Corrupt(sim.Time(3*step), 80); !(r.Value > 80) {
			t.Fatalf("re-enabled injector stays silent: %v", r.Value)
		}
	})
}
