// Package faultinject is the deterministic, seeded fault-injection layer
// for the Viyojit simulation. The paper's value proposition is a
// durability guarantee *under failure* — dirty pages ≤ budget so the
// battery can always flush them — so this package supplies the
// adversarial events the guarantee must survive:
//
//   - SSD write faults: transient errors, torn half-page programs, and
//     latency spikes, injected per-write via ssd.FaultInjector
//     (Injector), from a seeded RNG and/or a scripted schedule keyed by
//     write index.
//   - Battery capacity sag: step-downs of nameplate capacity or derating
//     at arbitrary virtual times (ScheduleBatterySag), which retune the
//     dirty budget through the battery's OnChange observers.
//   - Power failure at any chosen event-queue step (Crasher), the
//     primitive the crash-point sweep in the crashsweep subpackage is
//     built on.
//
// Everything runs on the virtual clock and a sim.RNG: the same seed and
// schedule reproduce the same faults at the same instants, so a failing
// crash point is a replayable artifact, not a flake.
package faultinject

import (
	"fmt"

	"viyojit/internal/battery"
	"viyojit/internal/mmu"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// Config parameterises the probabilistic side of an Injector. All
// probabilities are per submitted write and independent; zero values
// inject nothing (scripted faults still apply).
type Config struct {
	// Seed feeds the injector's private RNG stream.
	Seed uint64
	// TransientProb is the probability a write fails with
	// ssd.ErrWriteFault.
	TransientProb float64
	// TornProb is the probability a write tears (half the page lands,
	// ssd.ErrTornWrite).
	TornProb float64
	// SpikeProb is the probability a write's completion is delayed by
	// SpikeLatency.
	SpikeProb float64
	// SpikeLatency is the injected delay for a latency spike; 0 selects
	// 1 ms (an SSD internal-GC stall, ~16x the default per-IO latency).
	SpikeLatency sim.Duration
	// MaxFaults bounds the total number of injected failures (transient
	// + torn); 0 means unbounded. A bound guarantees retry loops
	// converge even at TransientProb 1.0.
	MaxFaults uint64

	// The silent-corruption classes below never surface an error to the
	// host, so they are exempt from MaxFaults (there is no retry loop to
	// starve) and are drawn from a second, independent RNG stream so
	// enabling them leaves existing transient/torn/spike schedules for a
	// given seed bit-identical.

	// LostProb is the probability a write is acked as durable but never
	// persisted (ssd.FaultLost).
	LostProb float64
	// MisdirectedProb is the probability a write is acked for its page
	// but lands on a different durable page (ssd.FaultMisdirected).
	MisdirectedProb float64
	// RotProb is the probability a write's completion is accompanied by
	// an at-rest bit flip on some durable page — silent bit rot, clocked
	// to write activity so rot density scales with runtime. It composes
	// with any other fault on the same write.
	RotProb float64
}

func (c Config) withDefaults() Config {
	if c.SpikeLatency == 0 {
		c.SpikeLatency = sim.Millisecond
	}
	return c
}

// Stats counts what an Injector actually injected.
type Stats struct {
	WritesSeen    uint64
	Transients    uint64
	Torn          uint64
	LatencySpikes uint64
	Lost          uint64
	Misdirected   uint64
	Rot           uint64
}

// Injector implements ssd.FaultInjector deterministically: scripted
// one-shot faults (keyed by the 0-based submission index) take
// precedence, then seeded probabilistic faults. It is not safe for
// concurrent use (the simulation is single-goroutine).
type Injector struct {
	cfg      Config
	rng      *sim.RNG // transient/torn/spike stream (3 draws per write)
	silent   *sim.RNG // lost/misdirected/rot stream (5 draws per write)
	next     uint64   // index of the next write to be submitted
	scripted map[uint64]ssd.FaultDecision
	enabled  bool
	stats    Stats
}

// New returns an enabled injector for cfg.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	return &Injector{
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed),
		silent:   sim.NewRNG(cfg.Seed ^ 0x51C4_11E7_C0DE_D00D),
		scripted: make(map[uint64]ssd.FaultDecision),
		enabled:  true,
	}
}

// WriteFault implements ssd.FaultInjector.
func (i *Injector) WriteFault(_ mmu.PageID, _ []byte) ssd.FaultDecision {
	idx := i.next
	i.next++
	if !i.enabled {
		return ssd.FaultDecision{}
	}
	i.stats.WritesSeen++
	if d, ok := i.scripted[idx]; ok {
		delete(i.scripted, idx)
		i.record(d)
		return d
	}
	var d ssd.FaultDecision
	// One RNG draw per probability keeps the stream layout stable: a
	// write consumes the same number of draws whatever it decides, so
	// changing one probability doesn't reshuffle later faults.
	pTransient := i.rng.Float64()
	pTorn := i.rng.Float64()
	pSpike := i.rng.Float64()
	if i.faultBudgetLeft() {
		if pTransient < i.cfg.TransientProb {
			d.Fault = ssd.FaultTransient
		} else if pTorn < i.cfg.TornProb {
			d.Fault = ssd.FaultTorn
		}
	}
	if pSpike < i.cfg.SpikeProb {
		d.ExtraLatency = i.cfg.SpikeLatency
	}
	// Silent classes on their own stream, same fixed-draw discipline:
	// every write consumes 5 draws whatever it decides, so tuning one
	// probability never reshuffles the others' schedules.
	pLost := i.silent.Float64()
	pMisdirect := i.silent.Float64()
	pRot := i.silent.Float64()
	misdirectSeed := i.silent.Uint64()
	rotSeed := i.silent.Uint64()
	if d.Fault == ssd.FaultNone {
		if pLost < i.cfg.LostProb {
			d.Fault = ssd.FaultLost
		} else if pMisdirect < i.cfg.MisdirectedProb {
			d.Fault = ssd.FaultMisdirected
			d.MisdirectSeed = misdirectSeed
		}
	}
	if pRot < i.cfg.RotProb {
		d.Rot = true
		d.RotSeed = rotSeed
	}
	i.record(d)
	return d
}

func (i *Injector) faultBudgetLeft() bool {
	return i.cfg.MaxFaults == 0 || i.stats.Transients+i.stats.Torn < i.cfg.MaxFaults
}

func (i *Injector) record(d ssd.FaultDecision) {
	switch d.Fault {
	case ssd.FaultTransient:
		i.stats.Transients++
	case ssd.FaultTorn:
		i.stats.Torn++
	case ssd.FaultLost:
		i.stats.Lost++
	case ssd.FaultMisdirected:
		i.stats.Misdirected++
	}
	if d.ExtraLatency > 0 {
		i.stats.LatencySpikes++
	}
	if d.Rot {
		i.stats.Rot++
	}
}

// ScriptAt schedules decision d for the write with the given 0-based
// submission index (counted from injector construction). Scripted
// faults fire even when the probabilistic side is all-zero, and count
// against MaxFaults' bookkeeping but not its bound.
func (i *Injector) ScriptAt(writeIndex uint64, d ssd.FaultDecision) {
	i.scripted[writeIndex] = d
}

// FailNextWrites scripts the next n submissions as transient failures —
// the "SSD went away briefly" schedule retry tests use.
func (i *Injector) FailNextWrites(n int) {
	for k := 0; k < n; k++ {
		i.scripted[i.next+uint64(k)] = ssd.FaultDecision{Fault: ssd.FaultTransient}
	}
}

// Disable makes the injector pass every write through unharmed (the
// post-crash flush path disables injection); Enable re-arms it.
func (i *Injector) Disable() { i.enabled = false }

// Enable re-arms a disabled injector.
func (i *Injector) Enable() { i.enabled = true }

// Writes returns the number of write submissions observed (including
// while disabled, so ScriptAt indices stay aligned).
func (i *Injector) Writes() uint64 { return i.next }

// Stats returns what was actually injected.
func (i *Injector) Stats() Stats { return i.stats }

// SagStep is one battery capacity step-down (or restoration) at a
// virtual time.
type SagStep struct {
	At sim.Time
	// CapacityJoules, if positive, replaces the nameplate capacity.
	CapacityJoules float64
	// Derating, if positive, replaces the runtime derating factor
	// (reversible sag: temperature or measured voltage droop).
	Derating float64
}

// ScheduleBatterySag arms one event per step on the simulation's shared
// queue; each fires at its virtual time and applies the step to batt,
// whose OnChange observers (the Viyojit manager's budget retune) then
// run. Invalid steps panic at fire time: a mis-specified fault schedule
// is a bug in the experiment, not a condition to recover.
func ScheduleBatterySag(events *sim.Queue, batt *battery.Battery, steps []SagStep) {
	for _, s := range steps {
		step := s
		events.Schedule(step.At, func(sim.Time) {
			if step.CapacityJoules > 0 {
				if err := batt.SetCapacityJoules(step.CapacityJoules); err != nil {
					panic(fmt.Sprintf("faultinject: battery sag: %v", err))
				}
			}
			if step.Derating > 0 {
				if err := batt.SetDerating(step.Derating); err != nil {
					panic(fmt.Sprintf("faultinject: battery sag: %v", err))
				}
			}
		})
	}
}
