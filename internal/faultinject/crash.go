package faultinject

import "viyojit/internal/sim"

// CrashPoint identifies where a scheduled power failure fired: the
// 1-based index of the event-queue step that was about to execute, and
// its virtual time.
type CrashPoint struct {
	Step uint64
	At   sim.Time
}

// crashSignal is the panic payload Crasher uses to unwind the workload
// when the armed step is reached. It is private: any other panic value
// propagates, so real bugs are never swallowed as crashes.
type crashSignal struct{ cp CrashPoint }

// Crasher triggers a simulated power failure at a chosen event-queue
// step. It installs a fire hook on the queue; when the armed step is
// about to execute, the hook panics with a private signal that Run
// recovers, leaving the simulation frozen exactly between two events —
// the instant the power failed. The queue itself stays consistent (the
// hook runs before the event is dequeued), so post-crash machinery
// (battery flush, durability verification) can keep using it after
// Disarm.
type Crasher struct {
	queue   *sim.Queue
	target  uint64
	armed   bool
	crashed bool
	point   CrashPoint
}

// NewCrasher installs a crasher on the queue. Only one crasher (or fire
// hook) per queue is supported.
func NewCrasher(q *sim.Queue) *Crasher {
	c := &Crasher{queue: q}
	q.SetFireHook(c.hook)
	return c
}

func (c *Crasher) hook(step uint64, at sim.Time) {
	if !c.armed || step < c.target {
		return
	}
	c.armed = false
	c.crashed = true
	c.point = CrashPoint{Step: step, At: at}
	panic(crashSignal{cp: c.point})
}

// ArmAt schedules the power failure for the given 1-based event step
// (as counted by the queue's Fired counter since its creation). Arming
// a step already in the past crashes on the next event.
func (c *Crasher) ArmAt(step uint64) {
	c.target = step
	c.armed = true
	c.crashed = false
}

// Disarm cancels a pending crash and detaches nothing: the hook stays
// installed but inert, so the post-crash flush can pump events safely.
func (c *Crasher) Disarm() { c.armed = false }

// Crashed reports whether the last Run ended in the armed crash, and
// where.
func (c *Crasher) Crashed() (CrashPoint, bool) { return c.point, c.crashed }

// AsCrash classifies a recovered panic value: it returns the crash
// point and true iff the value is a Crasher's power-failure signal.
// Components that own their own goroutines (the serve dispatch loop)
// use it as the Config.RecoverCrash filter, so simulated power failures
// are contained while real bugs still crash the process.
func AsCrash(v any) (CrashPoint, bool) {
	if sig, ok := v.(crashSignal); ok {
		return sig.cp, true
	}
	return CrashPoint{}, false
}

// Run executes fn, converting the armed crash — if it fires — into a
// normal return. It returns the crash point and true if the power
// failure fired, or a zero point and false if fn completed first. Any
// other panic propagates unchanged. After a crash the crasher is
// disarmed; the caller runs its post-failure protocol (battery flush,
// recovery, invariant checks) and may re-arm for the next point.
func (c *Crasher) Run(fn func()) (cp CrashPoint, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			if sig, ok := r.(crashSignal); ok {
				cp = sig.cp
				crashed = true
				return
			}
			panic(r)
		}
	}()
	fn()
	return CrashPoint{}, false
}
