package faultinject

import (
	"testing"

	"viyojit/internal/battery"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

func decisions(inj *Injector, n int) []ssd.FaultDecision {
	out := make([]ssd.FaultDecision, n)
	for i := range out {
		out[i] = inj.WriteFault(0, nil)
	}
	return out
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, TransientProb: 0.2, TornProb: 0.1, SpikeProb: 0.3}
	a := decisions(New(cfg), 500)
	b := decisions(New(cfg), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("write %d: %+v != %+v for the same seed", i, a[i], b[i])
		}
	}
	faults := 0
	for _, d := range a {
		if d.Fault != ssd.FaultNone || d.ExtraLatency > 0 {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("500 writes at these probabilities injected nothing")
	}
}

// TestInjectorStableStream: because every write consumes exactly the
// same number of RNG draws regardless of outcome, zeroing one
// probability must not reshuffle the faults another probability injects.
func TestInjectorStableStream(t *testing.T) {
	withSpikes := decisions(New(Config{Seed: 7, TransientProb: 0.1, SpikeProb: 0.5}), 300)
	noSpikes := decisions(New(Config{Seed: 7, TransientProb: 0.1}), 300)
	for i := range withSpikes {
		if (withSpikes[i].Fault == ssd.FaultTransient) != (noSpikes[i].Fault == ssd.FaultTransient) {
			t.Fatalf("write %d: transient fault placement changed when SpikeProb changed", i)
		}
	}
}

func TestInjectorScripted(t *testing.T) {
	inj := New(Config{Seed: 1})
	inj.ScriptAt(2, ssd.FaultDecision{Fault: ssd.FaultTorn})
	inj.FailNextWrites(2) // writes 0 and 1
	want := []ssd.WriteFault{ssd.FaultTransient, ssd.FaultTransient, ssd.FaultTorn, ssd.FaultNone}
	for i, w := range want {
		if d := inj.WriteFault(0, nil); d.Fault != w {
			t.Fatalf("write %d: fault %v, want %v", i, d.Fault, w)
		}
	}
	st := inj.Stats()
	if st.Transients != 2 || st.Torn != 1 {
		t.Fatalf("stats %+v, want 2 transients and 1 torn", st)
	}
}

func TestInjectorMaxFaults(t *testing.T) {
	inj := New(Config{Seed: 5, TransientProb: 1.0, MaxFaults: 3})
	n := 0
	for _, d := range decisions(inj, 50) {
		if d.Fault != ssd.FaultNone {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("injected %d faults, MaxFaults was 3", n)
	}
}

func TestInjectorDisable(t *testing.T) {
	inj := New(Config{Seed: 5, TransientProb: 1.0})
	if d := inj.WriteFault(0, nil); d.Fault != ssd.FaultTransient {
		t.Fatalf("enabled injector at prob 1.0 passed a write through")
	}
	inj.Disable()
	if d := inj.WriteFault(0, nil); d.Fault != ssd.FaultNone {
		t.Fatalf("disabled injector still injected")
	}
	if inj.Writes() != 2 {
		t.Fatalf("Writes() = %d, want 2 (disabled writes still count for script alignment)", inj.Writes())
	}
	inj.Enable()
	if d := inj.WriteFault(0, nil); d.Fault != ssd.FaultTransient {
		t.Fatalf("re-enabled injector passed a write through")
	}
}

func TestCrasherFiresAtArmedStep(t *testing.T) {
	clock := sim.NewClock()
	q := sim.NewQueue()
	fired := 0
	for i := 0; i < 10; i++ {
		q.Schedule(sim.Time(i+1)*sim.Time(sim.Microsecond), func(sim.Time) { fired++ })
	}
	c := NewCrasher(q)
	c.ArmAt(4)
	cp, crashed := c.Run(func() { q.RunUntil(clock, sim.Time(sim.Second)) })
	if !crashed {
		t.Fatal("armed crash did not fire")
	}
	if cp.Step != 4 {
		t.Fatalf("crashed at step %d, want 4", cp.Step)
	}
	if fired != 3 {
		t.Fatalf("%d events ran before the crash, want 3 (crash fires before event 4 executes)", fired)
	}
	if got, ok := c.Crashed(); !ok || got != cp {
		t.Fatalf("Crashed() = %+v,%v; want %+v,true", got, ok, cp)
	}
	// The queue must still be usable: the crashed event was never popped.
	q.RunUntil(clock, sim.Time(sim.Second))
	if fired != 10 {
		t.Fatalf("post-crash drain ran %d events total, want 10", fired)
	}
}

func TestCrasherDisarmAndCompletion(t *testing.T) {
	clock := sim.NewClock()
	q := sim.NewQueue()
	for i := 0; i < 5; i++ {
		q.Schedule(sim.Time(i+1)*sim.Time(sim.Microsecond), func(sim.Time) {})
	}
	c := NewCrasher(q)
	c.ArmAt(3)
	c.Disarm()
	if _, crashed := c.Run(func() { q.RunUntil(clock, sim.Time(sim.Second)) }); crashed {
		t.Fatal("disarmed crasher fired")
	}
	// Arming a step already in the past crashes on the next event.
	q.Schedule(clock.Now().Add(sim.Microsecond), func(sim.Time) {})
	c.ArmAt(2)
	cp, crashed := c.Run(func() { q.RunUntil(clock, sim.Time(2*sim.Second)) })
	if !crashed {
		t.Fatal("past-step arm did not crash on the next event")
	}
	if cp.Step != 6 {
		t.Fatalf("crashed at step %d, want 6 (the next event after 5 already fired)", cp.Step)
	}
}

func TestCrasherPropagatesForeignPanics(t *testing.T) {
	c := NewCrasher(sim.NewQueue())
	defer func() {
		if r := recover(); r != "real bug" {
			t.Fatalf("recovered %v, want the foreign panic to propagate", r)
		}
	}()
	c.Run(func() { panic("real bug") })
}

func TestScheduleBatterySag(t *testing.T) {
	clock := sim.NewClock()
	q := sim.NewQueue()
	b := battery.MustNew(battery.Config{CapacityJoules: 1000})
	retunes := 0
	b.OnChange(func(*battery.Battery) { retunes++ })
	ScheduleBatterySag(q, b, []SagStep{
		{At: sim.Time(10 * sim.Microsecond), Derating: 0.8},
		{At: sim.Time(20 * sim.Microsecond), CapacityJoules: 500},
	})
	q.RunUntil(clock, sim.Time(15*sim.Microsecond))
	if got := b.EffectiveJoules(); got != 1000*0.5*0.8 {
		t.Fatalf("after derating step: effective %v J, want 400", got)
	}
	q.RunUntil(clock, sim.Time(30*sim.Microsecond))
	if got := b.EffectiveJoules(); got != 500*0.5*0.8 {
		t.Fatalf("after capacity step: effective %v J, want 200", got)
	}
	if retunes != 2 {
		t.Fatalf("observers notified %d times, want 2", retunes)
	}
}

func TestScheduleBatterySagInvalidPanics(t *testing.T) {
	clock := sim.NewClock()
	q := sim.NewQueue()
	b := battery.MustNew(battery.Config{CapacityJoules: 1000})
	ScheduleBatterySag(q, b, []SagStep{{At: sim.Time(sim.Microsecond), Derating: 1.5}})
	defer func() {
		if recover() == nil {
			t.Fatal("invalid sag step did not panic at fire time")
		}
	}()
	q.RunUntil(clock, sim.Time(sim.Second))
}
