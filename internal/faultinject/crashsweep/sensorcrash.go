// sensorcrash.go is the lying-fuel-gauge crash sweep: RunSensor
// power-fails a live serve.Server mid-traffic — like servecrash.go —
// but with the dirty budget derived from the fault-tolerant telemetry
// chain (internal/sensor fused over two gauges) instead of a trusted
// battery read, while seeded sensor-fault injectors corrupt the gauges
// under fire: the voltage gauge suffers the full fault menu including
// lying up to 50% high, the coulomb counter suffers dropouts.
//
// Each crashed run proves, against the battery model as ground truth:
//
//  1. the fused estimate never over-reported true energy — at the crash
//     instant and at every monitor sample of the run;
//  2. dirty ≤ the fused-derived budget at every sample (modulo a staged
//     drain in progress), and dirty at the crash instant is within both
//     the manager's effective budget and the page count the TRUE
//     remaining energy can flush;
//  3. the battery flush completes within true energy (the gauge lied;
//     the physics didn't) and leaves the SSD byte-equal to NV-DRAM;
//  4. every injected fault episode was detected within its class's
//     bound (MTTD): rate-gate classes within a couple of samples of
//     onset, dropouts within the staleness window plus slack;
//  5. the recovered stack still answers every client's retry stream
//     exactly once (the servecrash.go oracle, unchanged).
//
// A stuck gauge is exempt from the MTTD audit here: the battery model
// holds constant during serving, so a gauge frozen at the true value is
// observationally honest — and harmless by the same argument.
package crashsweep

import (
	"fmt"
	"math"

	"viyojit/internal/battery"
	"viyojit/internal/faultinject"
	"viyojit/internal/health"
	"viyojit/internal/power"
	"viyojit/internal/sensor"
	"viyojit/internal/serve"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// SensorSweepConfig parameterises the lying-gauge sweep.
type SensorSweepConfig struct {
	// Serve is the underlying live-traffic sweep configuration.
	Serve ServeConfig
	// Interval is the telemetry/health sampling period; 0 selects 50 µs
	// — well inside a manager epoch, so budget reactions land between
	// cleans.
	Interval sim.Duration
	// Lie..Dropout are the voltage gauge's per-sample episode-start
	// probabilities. All-zero selects the default menu (lie 0.03,
	// spike 0.02, stuck 0.01, drift 0.01, dropout 0.01).
	Lie, Stuck, Drift, Spike, Dropout float64
	// LieMagnitude caps the lying gauge's fractional over-report;
	// 0 selects 0.5 — a gauge reading up to 50% high.
	LieMagnitude float64
	// CoulombDropout is the coulomb counter's dropout probability;
	// 0 selects 0.005. The coulomb gauge never lies in this sweep: the
	// safety argument needs one estimator that is honest-or-silent, and
	// the solo-margin bound covers the window where it is silent.
	CoulombDropout float64
}

func (c SensorSweepConfig) withDefaults() SensorSweepConfig {
	// A slow device by default: the budget formula reserves a fixed
	// flush overhead off the top, and on a fast device that overhead
	// dominates the energy term — a modest conservative dip in the
	// fused estimate would then zero the budget outright instead of
	// shrinking it. With the transfer term dominant, telemetry dips
	// degrade the budget proportionally, which is the regime the sweep
	// is studying.
	if c.Serve.SSD == (ssd.Config{}) {
		c.Serve.SSD.WriteBandwidth = 16 << 20
	}
	c.Serve = c.Serve.withDefaults()
	if c.Interval == 0 {
		c.Interval = 50 * sim.Microsecond
	}
	if c.Lie == 0 && c.Stuck == 0 && c.Drift == 0 && c.Spike == 0 && c.Dropout == 0 {
		c.Lie, c.Spike, c.Stuck, c.Drift, c.Dropout = 0.03, 0.02, 0.01, 0.01, 0.01
	}
	if c.LieMagnitude == 0 {
		c.LieMagnitude = 0.5
	}
	if c.CoulombDropout == 0 {
		c.CoulombDropout = 0.005
	}
	return c
}

// SensorSweepResult summarises a lying-gauge sweep. Episode and
// detection tallies are evidence the sweep exercised each fault class,
// not just that nothing failed.
type SensorSweepResult struct {
	BaselineEvents uint64
	Stride         uint64
	CrashPoints    int
	Completed      int
	Violations     []Violation
	// MaxDirtyAtCrash is the largest dirty set at any crash instant.
	MaxDirtyAtCrash int
	// Episodes counts injected fault episodes per class name across all
	// runs; Detections counts fused-layer rejections per reason.
	Episodes   map[string]int
	Detections map[string]int
	// MaxMTTD is the worst observed detection latency per audited class.
	MaxMTTD map[string]sim.Duration
	// MinFusedFraction is the lowest fused/true ratio seen at any
	// monitor sample — how deep the conservative under-report cut.
	// Starts at 1 (no sample below truth observed yet).
	MinFusedFraction float64
	// EmergencyEnters totals health-monitor emergency escalations
	// across runs; the provisioning here leaves no legitimate reason
	// for one, so the acceptance test pins it to zero.
	EmergencyEnters uint64
	// Retunes totals budget moves the monitor pushed — evidence the
	// budget actually tracked the fused estimate.
	Retunes uint64
	// SoloSamples / BlindSamples total the fused layer's degraded
	// sampling modes across runs.
	SoloSamples  uint64
	BlindSamples uint64
	// AckedMutations and ClientRetries as in ServeResult.
	AckedMutations uint64
	ClientRetries  uint64
}

// sensorRun is a serve stack plus the telemetry chain under test.
type sensorRun struct {
	*serveRun
	batt    *battery.Battery
	fused   *sensor.Fused
	mon     *health.Monitor
	vInj    *faultinject.SensorInjector
	cInj    *faultinject.SensorInjector
	pm      power.Model
	provCfg Config // the provisioning view flushEnergy/coverPages use
}

// buildSensor wires battery, gauges, fused sensor, and health monitor
// over a fresh serve stack. The battery is provisioned so that the
// monitor's budget derivation — BandwidthDerating applied to the same
// flush-overhead model the crash audit uses — lands back on the serve
// config's BudgetPages when the telemetry is honest: the sweep then
// watches the budget dip below that exactly when the fusion turns
// conservative.
//
// run salts the injector streams: each armed run explores its own
// fault schedule (runs crash early, so an unsalted schedule would make
// every run replay the same first few episodes). Still deterministic —
// a pure function of (config seed, run index).
func buildSensor(cfg SensorSweepConfig, run uint64) (*sensorRun, error) {
	base, err := buildServe(cfg.Serve)
	if err != nil {
		return nil, err
	}
	st := &sensorRun{serveRun: base, pm: power.Default()}
	const bandwidthDerating = 0.8 // the health.Config default
	// 2x provisioning headroom: the fixed flush-overhead reserve comes
	// off the top of the energy term, so without headroom a deep-but-
	// legitimate conservative dip (both gauges dark past the staleness
	// window, estimate decaying at full flush draw) could zero the
	// budget and trip a spurious emergency. With 2x, zeroing requires
	// several milliseconds of continuous total gauge darkness — beyond
	// any single episode the injectors generate. The crash audit stays
	// exact either way: dirty is checked against what TRUE energy can
	// flush, headroom included.
	provisionPages := 2 * int(math.Ceil(float64(cfg.Serve.BudgetPages)/bandwidthDerating))
	st.provCfg = Config{BudgetPages: provisionPages}
	st.batt = battery.MustNew(battery.Config{
		CapacityJoules:   flushEnergy(st.provCfg, st.dev, st.pm, st.region.Size()),
		DepthOfDischarge: 1,
		Derating:         1,
	})
	st.fused, err = sensor.New(sensor.Config{
		// The physical ceiling on how fast the pack can actually drain:
		// full flush draw. Held and blind estimates decay at this rate.
		MaxDischargeWatts: st.pm.FlushWatts(st.region.Size()),
		StaleAfter:        cfg.Interval * 5 / 2,
		MaxDetections:     1 << 16, // the MTTD audit needs every rejection
	}, st.batt.NameplateJoules,
		sensor.NewCoulombCounter("coulomb", st.batt.EffectiveJoules),
		sensor.NewVoltageSoC("voltage", st.batt.EffectiveJoules, 0))
	if err != nil {
		return nil, err
	}
	// One honest baseline sample before the injectors attach — the
	// facade does the same at New — so every estimator has an accepted
	// anchor and a lie-from-the-first-tick is a rise, not a baseline.
	st.fused.Sample(st.clock.Now())
	salt := run * 0x9E3779B97F4A7C15
	st.cInj = faultinject.NewSensorInjector(faultinject.SensorConfig{
		Seed:        cfg.Serve.Seed ^ 0xC001_0111 ^ salt,
		DropoutProb: cfg.CoulombDropout,
	})
	st.vInj = faultinject.NewSensorInjector(faultinject.SensorConfig{
		Seed:         cfg.Serve.Seed ^ 0x7017_A6E5 ^ salt,
		StuckProb:    cfg.Stuck,
		DriftProb:    cfg.Drift,
		SpikeProb:    cfg.Spike,
		DropoutProb:  cfg.Dropout,
		LieProb:      cfg.Lie,
		LieMagnitude: cfg.LieMagnitude,
	})
	st.fused.Estimator(0).SetCorruptor(st.cInj)
	st.fused.Estimator(1).SetCorruptor(st.vInj)
	st.mon, err = health.NewMonitor(st.events, st.clock, st.batt, st.mgr, st.pm, health.Config{
		Interval: cfg.Interval,
		// Align the monitor's joules→pages conversion with the crash
		// audit's flush-energy model, so the derived budget is by
		// construction BandwidthDerating × what true energy can flush.
		FlushOverhead: flushOverhead(st.provCfg, st.dev),
		Energy:        st.fused,
		// Every sample of the run feeds the every-instant audit.
		MaxSnapshots: 1 << 17,
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

const fusedEps = 1 + 1e-9

// auditTelemetry checks the conservatism invariants over the whole
// recorded run and returns per-run tallies into res.
func auditTelemetry(st *sensorRun, res *SensorSweepResult, fail func(string, ...any)) {
	trueJ := st.batt.EffectiveJoules()
	if fused := st.fused.EffectiveJoules(); fused > trueJ*fusedEps {
		fail("fused %v over-reports true %v at crash instant", fused, trueJ)
	}
	for _, s := range st.mon.Snapshots() {
		if s.EffectiveJoules > s.TrueJoules*fusedEps {
			fail("sample at %v: fused %v over-reports true %v", s.At, s.EffectiveJoules, s.TrueJoules)
		}
		if s.Dirty > s.Budget && !s.Draining {
			fail("sample at %v: dirty %d exceeds fused-derived budget %d with no drain staged",
				s.At, s.Dirty, s.Budget)
		}
		if s.TrueJoules > 0 {
			if frac := s.EffectiveJoules / s.TrueJoules; frac < res.MinFusedFraction {
				res.MinFusedFraction = frac
			}
		}
	}
	hs := st.mon.Stats()
	res.EmergencyEnters += hs.EmergencyEnters
	res.Retunes += hs.Retunes
	fs := st.fused.Stats()
	res.SoloSamples += fs.SoloSamples
	res.BlindSamples += fs.BlindSamples
	res.Detections[string(sensor.DetectBounds)] += int(fs.BoundsRejects)
	res.Detections[string(sensor.DetectRate)] += int(fs.RateRejects)
	res.Detections[string(sensor.DetectStale)] += int(fs.StaleDropouts)
	res.Detections[string(sensor.DetectDisagree)] += int(fs.Disagreements)
}

// auditMTTD verifies every audited episode produced a detection for its
// estimator within the class bound. Bounds, with I the sample interval:
//
//	lie/spike: onset is a rise past the rate gate — caught at the onset
//	           sample itself; allow Start+2I for slack.
//	drift:     the reading equals truth at onset and rises from the
//	           next sample; allow Start+3I.
//	dropout:   silent by design for the staleness grace; the watchdog
//	           must fire by Start+StaleAfter+3I.
//	stuck:     exempt — truth is constant during serving, so a frozen
//	           gauge reads correctly (see the package comment).
//
// Episodes whose deadline lies beyond the last sample the run got to
// take (the crash preempted detection) are skipped, as are lies and
// spikes with sub-float-noise magnitudes.
func auditMTTD(name string, inj *faultinject.SensorInjector, st *sensorRun,
	interval, staleAfter sim.Duration, res *SensorSweepResult, fail func(string, ...any)) {
	dets := st.fused.Detections()
	lastSample := st.fused.LastSampleAt()
	firstDetAfter := func(start sim.Time) (sim.Time, bool) {
		for _, d := range dets {
			if d.Estimator == name && d.At >= start {
				return d.At, true
			}
		}
		return 0, false
	}
	for _, ep := range inj.Episodes() {
		res.Episodes[ep.Class.String()]++
		var deadline sim.Time
		switch ep.Class {
		case faultinject.SensorStuck:
			continue
		case faultinject.SensorLieHigh, faultinject.SensorSpike:
			if ep.Magnitude < 1e-6 {
				continue
			}
			deadline = ep.Start.Add(2 * interval)
		case faultinject.SensorDrift:
			deadline = ep.Start.Add(3 * interval)
		case faultinject.SensorDropout:
			deadline = ep.Start.Add(staleAfter + 3*interval)
		}
		if deadline > lastSample {
			continue // crash preempted the detection window
		}
		at, ok := firstDetAfter(ep.Start)
		if !ok || at > deadline {
			got := "none"
			if ok {
				got = at.Sub(ep.Start).String()
			}
			fail("%s %s episode at %v undetected within %v (first detection: %s)",
				name, ep.Class, ep.Start, deadline.Sub(ep.Start), got)
			continue
		}
		mttd := at.Sub(ep.Start)
		if prev, seen := res.MaxMTTD[ep.Class.String()]; !seen || mttd > prev {
			res.MaxMTTD[ep.Class.String()] = mttd
		}
	}
}

// runSensorPoint executes one armed run of the lying-gauge sweep:
// serve under gauge faults, crash (or complete), audit the telemetry
// trail, flush on TRUE energy, recover, replay, verify.
func runSensorPoint(cfg SensorSweepConfig, run, step uint64, keys [][]byte, res *SensorSweepResult) error {
	st, err := buildSensor(cfg, run)
	if err != nil {
		return err
	}
	crasher := faultinject.NewCrasher(st.events)
	crasher.ArmAt(step)
	if err := st.srv.Start(); err != nil {
		return err
	}
	var logs []*clientLog
	crasher.Run(func() {
		logs = driveClients(cfg.Serve, st.srv, keys)
		st.srv.Stop()
		if _, crashed := crasher.Crashed(); !crashed {
			st.mon.Close()
			st.mgr.FlushAll()
		}
	})
	cp, crashed := crasher.Crashed()
	crasher.Disarm()
	st.mon.Close()

	var out []Violation
	fail := func(format string, args ...any) {
		out = append(out, Violation{Step: cp.Step, Msg: fmt.Sprintf(format, args...)})
	}
	for _, lg := range logs {
		if lg.err != nil {
			fail("client error: %v", lg.err)
		}
		res.AckedMutations += uint64(len(lg.acked))
		res.ClientRetries += lg.retries
	}

	staleAfter := cfg.Interval * 5 / 2
	auditTelemetry(st, res, fail)
	auditMTTD("voltage", st.vInj, st, cfg.Interval, staleAfter, res, fail)
	auditMTTD("coulomb", st.cInj, st, cfg.Interval, staleAfter, res, fail)

	if !crashed {
		for _, lg := range logs {
			if lg.inDoubt != nil {
				fail("clean run left client %d seq %d unacknowledged", lg.id, lg.inDoubt.seq)
			}
		}
		if err := st.mgr.VerifyDurability(); err != nil {
			fail("clean-run durability: %v", err)
		}
		checkOracle(st.store, keys, oracleExpect(logs, nil), fail)
		st.mgr.Close()
		res.Completed++
		res.Violations = append(res.Violations, out...)
		return nil
	}
	res.CrashPoints++

	// The hard bounds at the crash instant: the manager's effective
	// budget AND what the true remaining energy can flush — the latter
	// is the guarantee the whole telemetry chain exists to preserve
	// against a gauge lying high.
	trueJ := st.batt.EffectiveJoules()
	dirty := st.mgr.DirtyCount()
	if dirty > res.MaxDirtyAtCrash {
		res.MaxDirtyAtCrash = dirty
	}
	if budget := st.mgr.EffectiveDirtyBudget(); dirty > budget {
		fail("dirty %d exceeds effective budget %d at crash", dirty, budget)
	}
	if cover := coverPages(st.provCfg, st.dev, st.pm, st.region.Size(), trueJ); dirty > cover {
		fail("dirty %d exceeds the %d pages true energy %.4f J can flush", dirty, cover, trueJ)
	}

	// Flush on the PHYSICAL battery — the lying gauge has no say here.
	report := st.mgr.PowerFail(st.pm, trueJ)
	if !report.Survived {
		fail("flush of %d pages used %.4f J of %.4f J true energy",
			report.DirtyAtFailure, report.EnergyUsedJoules, report.EnergyAvailableJoules)
	}
	if err := st.mgr.VerifyDurability(); err != nil {
		fail("durability: %v", err)
	}

	// The recovered stack serves the retry streams exactly once — the
	// servecrash.go protocol, unchanged by the telemetry layer.
	rec, err := recoverServe(cfg.Serve, st.serveRun)
	if err != nil {
		fail("recovery: %v", err)
		res.Violations = append(res.Violations, out...)
		return nil
	}
	redone, err := serve.ReplayPending(rec.store, rec.journal)
	if err != nil {
		fail("recovery redo: %v", err)
	}
	if redone > 1 {
		fail("recovery found %d in-flight intents; a serial server can leave at most one", redone)
	}
	tally, err := replayRetryStreams(rec, logs, keys, fail)
	if err != nil {
		return err
	}
	checkOracle(rec.store, keys, oracleExpect(logs, tally.replayed), fail)
	rec.mgr.Close()
	res.Violations = append(res.Violations, out...)
	return nil
}

// RunSensor executes the lying-gauge live-traffic sweep: one un-crashed
// calibration run (telemetry attached, so monitor ticks are part of the
// step space) sizes the lattice, then fresh runs crash at swept steps
// until MaxCrashPoints runs have actually power-failed.
func RunSensor(cfg SensorSweepConfig) (SensorSweepResult, error) {
	cfg = cfg.withDefaults()
	res := SensorSweepResult{
		Episodes:         make(map[string]int),
		Detections:       make(map[string]int),
		MaxMTTD:          make(map[string]sim.Duration),
		MinFusedFraction: 1,
	}
	keys := makeKeys(cfg.Serve.Keys)

	base, err := buildSensor(cfg, 0)
	if err != nil {
		return res, err
	}
	if err := base.srv.Start(); err != nil {
		return res, err
	}
	logs := driveClients(cfg.Serve, base.srv, keys)
	base.srv.Stop()
	base.mon.Close()
	res.BaselineEvents = base.events.Fired()
	for _, lg := range logs {
		if lg.err != nil {
			return res, fmt.Errorf("crashsweep: sensor baseline client: %w", lg.err)
		}
		if lg.inDoubt != nil {
			return res, fmt.Errorf("crashsweep: sensor baseline left client %d seq %d unacked", lg.id, lg.inDoubt.seq)
		}
	}
	base.mgr.FlushAll()
	if n := base.mgr.DirtyCount(); n != 0 {
		return res, fmt.Errorf("crashsweep: sensor baseline left %d dirty pages after flush", n)
	}
	base.mgr.Close()
	if res.BaselineEvents == 0 {
		return res, fmt.Errorf("crashsweep: sensor baseline fired no events")
	}

	stride := cfg.Serve.Stride
	if stride == 0 {
		stride = res.BaselineEvents / uint64(cfg.Serve.MaxCrashPoints)
		if stride == 0 {
			stride = 1
		}
	}
	res.Stride = stride

	maxAttempts := 4 * cfg.Serve.MaxCrashPoints
	for i := 1; res.CrashPoints < cfg.Serve.MaxCrashPoints && i <= maxAttempts; i++ {
		step := uint64(i) * stride
		if step > res.BaselineEvents {
			pass := step / res.BaselineEvents
			step = step%res.BaselineEvents + pass
			if step == 0 {
				step = 1
			}
		}
		if err := runSensorPoint(cfg, uint64(i), step, keys, &res); err != nil {
			return res, fmt.Errorf("crashsweep: sensor run armed at step %d: %w", step, err)
		}
	}
	return res, nil
}
