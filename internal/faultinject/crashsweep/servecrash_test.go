package crashsweep

import (
	"strconv"
	"testing"

	"os"
)

// The acceptance sweep: ≥200 crash points under ≥8 concurrent retrying
// clients, zero lost acks, zero double-applies, the journal's pages
// audited inside the dirty budget, and the rebuilt dedup table equal to
// the journal's committed prefix at every recovery.
func TestSweepServeCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("full serve crash sweep is slow; run without -short")
	}
	res, err := RunServe(ServeConfig{Seed: 0x5EEDCAFE})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline %d events, stride %d; %d crash points, %d completed runs",
		res.BaselineEvents, res.Stride, res.CrashPoints, res.Completed)
	t.Logf("acked %d mutations (%d client retries); in-doubt replayed %d (deduped %d, redone %d, fresh %d); acked-retry dedups %d; torn opens %d",
		res.AckedMutations, res.ClientRetries, res.InDoubtReplayed,
		res.ReplayDeduped, res.ReplayRedone, res.ReplayFresh,
		res.AckedRetryDedups, res.TornOpens)
	t.Logf("max dirty at crash %d pages; journal dirty at %d crash instants; journal bytes %d over mutation bytes %d (amplification %.2fx)",
		res.MaxDirtyAtCrash, res.JournalDirtyCrashes,
		res.JournalBytes, res.MutationBytes,
		float64(res.JournalBytes)/float64(res.MutationBytes))

	for _, v := range res.Violations {
		t.Errorf("step %d: %s", v.Step, v.Msg)
	}
	if res.CrashPoints < 200 {
		t.Errorf("only %d crash points, want ≥ 200", res.CrashPoints)
	}
	cfg := ServeConfig{}.withDefaults()
	if cfg.Clients < 8 {
		t.Errorf("default sweep drives %d clients, want ≥ 8", cfg.Clients)
	}
	if res.MaxDirtyAtCrash == 0 || res.MaxDirtyAtCrash > cfg.BudgetPages {
		t.Errorf("max dirty at crash = %d, want in (0, %d]", res.MaxDirtyAtCrash, cfg.BudgetPages)
	}
	// Evidence the sweep exercised the paths it claims to prove, not
	// just that nothing failed.
	if res.AckedMutations == 0 {
		t.Error("no mutation was ever acknowledged before a crash")
	}
	if res.InDoubtReplayed == 0 {
		t.Error("no crash ever caught a mutation in flight; the in-doubt replay path went untested")
	}
	if res.AckedRetryDedups == 0 {
		t.Error("no retry of an acknowledged mutation was absorbed by a recovered journal")
	}
	if res.ReplayRedone == 0 {
		t.Error("no crash ever landed between intent and result; the recovery redo path went untested")
	}
	if res.JournalDirtyCrashes == 0 {
		t.Error("no crash ever found a dirty journal page; budget accounting of the journal went unwitnessed")
	}
}

// A small always-on sweep so the exactly-once machinery is exercised on
// every `go test ./...`, -short included.
func TestSweepServeCrashQuick(t *testing.T) {
	res, err := RunServe(ServeConfig{
		Seed:           0xBEEF,
		Clients:        8,
		OpsPerClient:   12,
		MaxCrashPoints: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("step %d: %s", v.Step, v.Msg)
	}
	if res.CrashPoints < 25 {
		t.Errorf("only %d crash points, want ≥ 25", res.CrashPoints)
	}
	if res.AckedMutations == 0 {
		t.Error("quick sweep acknowledged no mutations")
	}
	t.Logf("quick: %d crash points, %d acked, %d in-doubt replayed, max dirty %d",
		res.CrashPoints, res.AckedMutations, res.InDoubtReplayed, res.MaxDirtyAtCrash)
}

// CI seed matrix: CRASHSWEEP_SEED varies the client schedules and key
// draws across jobs without new test code.
func TestSweepServeCrashSeedMatrix(t *testing.T) {
	env := os.Getenv("CRASHSWEEP_SEED")
	if env == "" {
		t.Skip("set CRASHSWEEP_SEED to run the seed matrix")
	}
	seed, err := strconv.ParseUint(env, 0, 64)
	if err != nil {
		t.Fatalf("bad CRASHSWEEP_SEED %q: %v", env, err)
	}
	res, err := RunServe(ServeConfig{Seed: seed, MaxCrashPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("seed %#x step %d: %s", seed, v.Step, v.Msg)
	}
	if res.CrashPoints < 60 {
		t.Errorf("seed %#x: only %d crash points, want ≥ 60", seed, res.CrashPoints)
	}
	t.Logf("seed %#x: %d crash points, %d acked, %d in-doubt replayed",
		seed, res.CrashPoints, res.AckedMutations, res.InDoubtReplayed)
}
