// Package crashsweep is the crash-point sweep harness: it runs a seeded
// YCSB-A-style workload over a Viyojit-managed region, power-fails it at
// every Nth event-queue step, and after each crash asserts the paper's
// durability invariants:
//
//  1. dirty count ≤ budget at the instant of failure (the Fig-6 bound
//     the battery is provisioned against);
//  2. the battery-powered flush completes within the provisioned energy;
//  3. post-flush SSD contents are byte-equal to NV-DRAM
//     (core.Manager.VerifyDurability);
//  4. a fresh region restored from the SSD matches it byte-for-byte
//     (recovery.VerifyRestored);
//  5. the write-ahead log replays to a consistent prefix of what was
//     appended — torn tails detected and rejected, never mis-replayed;
//  6. a ptx transactional heap reopens to an all-or-nothing state: a
//     transaction in flight at the crash is fully rolled back.
//
// Corruption mode (Config.Corruption) additionally injects silent
// faults — lost writes, misdirected writes, at-rest bit rot — and runs
// the background scrubber during the workload. Byte-equality between
// NV-DRAM and the SSD no longer holds by construction, so invariants 3
// and 4 are replaced by the detection guarantee: every diverging page
// must be caught by checksum verification (repaired by the scrubber or
// quarantined at restore), and no corrupt byte is ever restored or
// reported durable without detection — zero silent escapes.
//
// Every run is rebuilt from the same seed, so a failing crash point is
// identified by (Seed, Step) alone and replays exactly: the correctness
// regression tool later scaling and performance PRs run against.
package crashsweep

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"viyojit/internal/battery"
	"viyojit/internal/core"
	"viyojit/internal/dist"
	"viyojit/internal/faultinject"
	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/ptx"
	"viyojit/internal/recovery"
	"viyojit/internal/scrub"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/wal"
)

// Config parameterises a sweep. Zero values select a small, fast
// configuration that still exercises forced cleans, epoch ticks, WAL
// appends, and transactions.
type Config struct {
	// Seed drives the whole run: workload, value bytes, and any fault
	// injector. Same seed, same event sequence, same crash points.
	Seed uint64
	// HeapPages is the size of the main write-target mapping; 0 selects
	// 96.
	HeapPages int
	// BudgetPages is the dirty budget; 0 selects HeapPages/4.
	BudgetPages int
	// Ops is the number of workload operations per run; 0 selects 600.
	Ops int
	// ReadFraction is the read share of the op mix; 0 selects 0.5
	// (YCSB-A's 50/50 read/update).
	ReadFraction float64
	// ZipfTheta is the key-popularity skew; 0 selects 0.99 (YCSB's
	// default).
	ZipfTheta float64
	// Stride crashes at every Stride-th event step; 0 derives a stride
	// that yields about MaxCrashPoints points across the run.
	Stride uint64
	// MaxCrashPoints bounds the sweep; 0 selects 200.
	MaxCrashPoints int
	// Faults optionally injects SSD write faults during the run (the
	// injector is disabled for each post-crash battery flush). The
	// Seed field of this nested config is ignored; the sweep derives
	// it from Seed so one number reproduces everything.
	Faults faultinject.Config
	// InjectFaults enables the Faults schedule.
	InjectFaults bool
	// HardwareAssist runs the §5.4 MMU-offload manager instead of the
	// software write-protection one.
	HardwareAssist bool
	// Epoch overrides the manager's scan period (0 = 1 ms).
	Epoch sim.Duration
	// SSD overrides the backing-device configuration (zero = defaults).
	// The sag sweep below uses it to pick a slow write bandwidth so the
	// battery's energy is dominated by page transfer time rather than
	// fixed flush overhead — otherwise a 50 % sag saws through the
	// overhead reserve and leaves nothing measurable to shrink.
	SSD ssd.Config
	// SagFraction, when non-zero, provisions a battery exactly covering
	// BudgetPages (plus the fixed flush overhead) and schedules a single
	// capacity step-down to this fraction of nameplate at SagAt. The
	// battery's safe-shrink hook drains the dirty set to the projected
	// coverage *before* the capacity drops, and every crash point —
	// including ones landing mid-drain — additionally asserts
	// dirty ≤ pages coverable by the battery's effective joules at the
	// crash instant, and runs the flush against that live energy.
	SagFraction float64
	// SagAt is the virtual time of the sag step; 0 (with SagFraction
	// set) selects 1.5 ms, roughly mid-run for the default workload.
	SagAt sim.Duration
	// Corruption enables the silent-corruption sweep mode: lost,
	// misdirected, and at-rest-rot faults are injected during the
	// workload (defaults below unless the Faults config sets its own
	// silent probabilities), a background scrubber repairs what it
	// catches, and the post-crash protocol changes from strict
	// byte-equality to zero *undetected* escapes — every page whose
	// durable or restored bytes diverge from NV-DRAM truth must have
	// been detected (repaired or quarantined), never silently restored.
	Corruption bool
	// ScrubShare is the background scrubber's read-bandwidth share in
	// corruption mode; 0 selects 0.2 (aggressive, so the short sweep
	// runs exercise the repair path, not just restore-time detection).
	ScrubShare float64
}

func (c Config) withDefaults() Config {
	if c.HeapPages == 0 {
		c.HeapPages = 96
	}
	if c.BudgetPages == 0 {
		c.BudgetPages = c.HeapPages / 4
	}
	if c.Ops == 0 {
		c.Ops = 600
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.ZipfTheta == 0 {
		c.ZipfTheta = dist.ZipfianConstant
	}
	if c.MaxCrashPoints == 0 {
		c.MaxCrashPoints = 200
	}
	if c.SagFraction > 0 && c.SagAt == 0 {
		c.SagAt = 1500 * sim.Microsecond
	}
	if c.Corruption {
		if c.ScrubShare == 0 {
			c.ScrubShare = 0.2
		}
		c.InjectFaults = true
		if c.Faults.LostProb == 0 && c.Faults.MisdirectedProb == 0 && c.Faults.RotProb == 0 {
			c.Faults.LostProb = 0.02
			c.Faults.MisdirectedProb = 0.01
			c.Faults.RotProb = 0.05
		}
	}
	return c
}

// Fixed layout constants for the companion mappings.
const (
	pageSize     = nvdram.DefaultPageSize
	walBytes     = 16 * pageSize // record log
	ptxLogBytes  = 2 * pageSize  // undo-log partition of the ptx mapping
	ptxDataBytes = 2 * pageSize
	ptxBytes     = ptxLogBytes + ptxDataBytes
	ptxSlots     = 8 // slots one transaction updates together
)

// Violation is one failed invariant at one crash point.
type Violation struct {
	Step uint64
	Msg  string
}

func (v Violation) String() string { return fmt.Sprintf("step %d: %s", v.Step, v.Msg) }

// Result summarises a sweep.
type Result struct {
	// BaselineEvents is the number of events the un-crashed run fires —
	// the sweep's step space.
	BaselineEvents uint64
	// Stride is the effective crash-point spacing.
	Stride uint64
	// CrashPoints is the number of power failures injected.
	CrashPoints int
	// Completed counts runs where the armed step was never reached
	// (crash point past the run's end); they still verified a clean
	// shutdown.
	Completed int
	// Violations lists every invariant failure; empty means the
	// durability guarantee held at every crash point.
	Violations []Violation
	// TornTails counts crashes whose WAL replay detected (and rejected)
	// a torn tail record — evidence the detection path runs.
	TornTails int
	// Rollbacks counts crashes that reopened the ptx heap with an
	// in-flight transaction to roll back.
	Rollbacks int
	// MaxDirtyAtCrash is the largest dirty set observed at any crash
	// instant (always ≤ budget unless a violation was recorded).
	MaxDirtyAtCrash int
	// MidDrainCrashes counts crashes that landed while a staged budget
	// shrink was still draining (sag sweeps only) — evidence the sweep
	// exercised the transition window, not just the steady states.
	MidDrainCrashes int
	// SaggedCrashes counts crashes after the battery step-down applied.
	SaggedCrashes int

	// Corruption-mode evidence counters (zero outside corruption mode).

	// CorruptionsInjected totals lost + misdirected + rot faults injected
	// across all crash runs — the sweep is vacuous if this stays zero.
	CorruptionsInjected uint64
	// ScrubDetections counts corruptions the background scrubber caught
	// before the crash; ScrubRepairs counts its successful repairs
	// (re-dirties plus kicked pending cleans).
	ScrubDetections uint64
	ScrubRepairs    uint64
	// RestoreQuarantines counts corrupt pages detected at restore time
	// and quarantined rather than handed back as good data.
	RestoreQuarantines int
	// ReportedLosses counts crashes where a WAL or ptx consistency check
	// was relaxed because a quarantined page overlapped its mapping —
	// honestly reported data loss, as opposed to a silent escape.
	ReportedLosses int
	// SilentEscapes counts divergences that slipped past every detector:
	// corrupt bytes restored or reported durable without any checksum
	// failure or quarantine. Each one is also a Violation; the acceptance
	// bar is zero.
	SilentEscapes int
}

// runState is one freshly built system plus the workload's shadow model.
type runState struct {
	cfg    Config
	clock  *sim.Clock
	events *sim.Queue
	region *nvdram.Region
	dev    *ssd.SSD
	mgr    *core.Manager
	inj    *faultinject.Injector
	scrub  *scrub.Scrubber // corruption mode only

	// Sag mode (Config.SagFraction > 0): the provisioned battery, the
	// scheduled step-down event, and the joules→pages inverse of
	// flushEnergy used both to retune the budget and to verify coverage.
	batt     *battery.Battery
	sagEvent *sim.Event
	cover    func(joules float64) int

	heapM *core.Mapping
	walM  *core.Mapping
	ptxM  *core.Mapping

	log     *wal.Log
	ptxHeap *ptx.Heap

	// Shadow model for post-crash verification.
	walAttempted [][]byte // payloads passed to Append, in order
	walCommitted int      // appends that returned nil
	ptxCommitted uint64   // transactions whose Update returned nil
}

// build constructs a fresh system for cfg. Every run of the same cfg is
// bit-identical until the crash fires.
func build(cfg Config) (*runState, error) {
	st := &runState{cfg: cfg}
	st.clock = sim.NewClock()
	st.events = sim.NewQueue()
	regionPages := cfg.HeapPages + walBytes/pageSize + ptxBytes/pageSize
	var err error
	st.region, err = nvdram.New(st.clock, nvdram.Config{Size: int64(regionPages) * pageSize})
	if err != nil {
		return nil, err
	}
	st.dev = ssd.New(st.clock, st.events, cfg.SSD)
	if cfg.InjectFaults {
		fcfg := cfg.Faults
		fcfg.Seed = cfg.Seed ^ 0xFA17 // derived, so Config.Seed reproduces everything
		st.inj = faultinject.New(fcfg)
		st.dev.SetFaultInjector(st.inj)
	}
	st.mgr, err = core.NewManager(st.clock, st.events, st.region, st.dev, core.Config{
		DirtyBudgetPages: cfg.BudgetPages,
		Epoch:            cfg.Epoch,
		HardwareAssist:   cfg.HardwareAssist,
	})
	if err != nil {
		return nil, err
	}
	if st.heapM, err = st.mgr.Map("heap", int64(cfg.HeapPages)*pageSize); err != nil {
		return nil, err
	}
	if st.walM, err = st.mgr.Map("wal", walBytes); err != nil {
		return nil, err
	}
	if st.ptxM, err = st.mgr.Map("ptx", ptxBytes); err != nil {
		return nil, err
	}
	if st.log, err = wal.Create(st.walM); err != nil {
		return nil, err
	}
	if st.ptxHeap, err = ptx.Create(st.ptxM, ptxLogBytes); err != nil {
		return nil, err
	}
	if cfg.Corruption {
		st.scrub = scrub.New(st.clock, st.events, st.dev, st.mgr, scrub.Config{
			BandwidthShare: cfg.ScrubShare,
		})
		st.scrub.Start()
	}
	if cfg.SagFraction > 0 {
		pm := power.Default()
		dramBytes := st.region.Size()
		// Provision exactly enough effective energy for a budget-sized
		// flush (DoD and derating 1, so nameplate == effective).
		st.batt = battery.MustNew(battery.Config{
			CapacityJoules:   flushEnergy(cfg, st.dev, pm, dramBytes),
			DepthOfDischarge: 1,
			Derating:         1,
		})
		st.cover = func(j float64) int { return coverPages(cfg, st.dev, pm, dramBytes, j) }
		// Safe shrink: drain to the projected coverage while the battery
		// still holds its current charge, so a crash landing anywhere in
		// the drain finds the dirty set covered by the energy actually
		// present. The crasher's fire hook counts the drain's nested
		// event steps, so crash points genuinely land mid-drain.
		st.batt.OnShrink(func(_ *battery.Battery, projected float64) {
			pages := st.cover(projected)
			if pages < 1 {
				pages = 1
			}
			_ = st.mgr.SetDirtyBudgetSync(pages)
		})
		st.batt.OnChange(func(b *battery.Battery) {
			pages := st.cover(b.EffectiveJoules())
			if pages < 1 {
				pages = 1
			}
			_ = st.mgr.SetDirtyBudget(pages)
		})
		st.sagEvent = st.events.Schedule(sim.Time(0).Add(cfg.SagAt), func(sim.Time) {
			_ = st.batt.SetCapacityJoules(st.batt.NameplateJoules() * cfg.SagFraction)
		})
	}
	return st, nil
}

// workload drives the YCSB-A-style mix: zipf-skewed 64–192 B updates and
// reads over the heap, a WAL append every 4th op, and a multi-slot ptx
// transaction every 16th op. It ends with a full flush (clean shutdown)
// so the baseline run leaves nothing dirty.
func (st *runState) workload() error {
	cfg := st.cfg
	rng := sim.NewRNG(cfg.Seed)
	zipf := dist.NewZipfian(rng.Fork(), int64(cfg.HeapPages), cfg.ZipfTheta)
	opRNG := rng.Fork()
	valRNG := rng.Fork()
	buf := make([]byte, 192)

	for op := 0; op < cfg.Ops; op++ {
		page := zipf.Next()
		off := int64(page)*pageSize + opRNG.Int63n(pageSize-192)
		if opRNG.Float64() < cfg.ReadFraction {
			if err := st.heapM.ReadAt(buf[:64], off); err != nil {
				return err
			}
		} else {
			n := 64 + opRNG.Intn(129)
			for i := 0; i < n; i++ {
				buf[i] = byte(valRNG.Uint64())
			}
			if err := st.heapM.WriteAt(buf[:n], off); err != nil {
				return err
			}
		}
		if op%4 == 3 {
			rec := make([]byte, 24)
			binary.LittleEndian.PutUint64(rec[0:], uint64(op))
			binary.LittleEndian.PutUint64(rec[8:], valRNG.Uint64())
			binary.LittleEndian.PutUint64(rec[16:], uint64(len(st.walAttempted)))
			st.walAttempted = append(st.walAttempted, rec)
			if _, err := st.log.Append(rec); err != nil {
				return fmt.Errorf("wal append %d: %w", len(st.walAttempted)-1, err)
			}
			st.walCommitted++
		}
		if op%16 == 15 {
			val := st.ptxCommitted + 1
			err := st.ptxHeap.Update(func(tx *ptx.Tx) error {
				var cell [8]byte
				binary.LittleEndian.PutUint64(cell[:], val)
				for s := 0; s < ptxSlots; s++ {
					if err := tx.Write(cell[:], int64(s)*8); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("ptx update %d: %w", val, err)
			}
			st.ptxCommitted = val
		}
		// Let background work (epoch ticks, IO completions) interleave,
		// and advance time so epochs actually elapse.
		st.clock.Advance(5 * sim.Microsecond)
		st.mgr.Pump()
	}
	st.mgr.FlushAll()
	return nil
}

// flushOverhead is the fixed flush-time allowance beyond the streaming
// transfer: completing in-flight IOs (which may carry injected latency
// spikes), per-IO latency, and scheduling slack.
func flushOverhead(cfg Config, dev *ssd.SSD) sim.Duration {
	overhead := sim.Duration(dev.Config().MaxOutstanding+1) * dev.Config().PerIOLatency
	if cfg.InjectFaults {
		spike := cfg.Faults.SpikeLatency
		if spike == 0 {
			spike = sim.Millisecond
		}
		overhead += sim.Duration(dev.Config().MaxOutstanding) * spike
	}
	overhead += sim.Millisecond // scheduling slack
	return overhead
}

// flushEnergy returns battery energy sufficient for a correct flush of
// at most budget dirty pages: the streaming transfer plus flushOverhead.
// A dirty set over budget overruns this energy and fails the Survived
// check.
func flushEnergy(cfg Config, dev *ssd.SSD, pm power.Model, dramBytes int64) float64 {
	secs := dev.FlushTimeFor(cfg.BudgetPages).Seconds() + flushOverhead(cfg, dev).Seconds()
	return pm.FlushWatts(dramBytes) * secs
}

// coverPages inverts flushEnergy: the number of dirty pages a battery
// holding joules can flush, after reserving the same fixed overhead. The
// tiny epsilon undoes float round-off so coverPages(flushEnergy(n)) == n.
func coverPages(cfg Config, dev *ssd.SSD, pm power.Model, dramBytes int64, joules float64) int {
	secs := joules/pm.FlushWatts(dramBytes) - flushOverhead(cfg, dev).Seconds()
	if secs <= 0 {
		return 0
	}
	return int(secs*float64(dev.EffectiveWriteBandwidth())/float64(dev.Config().PageSize) + 1e-9)
}

// verifyCrash runs the full post-failure protocol on a crashed run and
// returns every violated invariant.
func verifyCrash(st *runState, step uint64, res *Result) []Violation {
	var out []Violation
	fail := func(format string, args ...any) {
		out = append(out, Violation{Step: step, Msg: fmt.Sprintf(format, args...)})
	}
	cfg := st.cfg

	// (1) The bound the battery is provisioned against. In sag mode the
	// operative bound is the staged-drain ratchet, and additionally the
	// dirty set must be coverable by the energy the battery actually
	// holds at this instant — the re-provisioning invariant, checked
	// even (especially) when the crash landed mid-drain.
	dirty, budget := st.mgr.DirtyCount(), st.mgr.EffectiveDirtyBudget()
	if dirty > res.MaxDirtyAtCrash {
		res.MaxDirtyAtCrash = dirty
	}
	if dirty > budget {
		fail("dirty count %d exceeds effective budget %d at crash", dirty, budget)
	}
	if st.mgr.Draining() {
		res.MidDrainCrashes++
	}
	if st.batt != nil {
		if coverable := st.cover(st.batt.EffectiveJoules()); dirty > coverable {
			fail("dirty count %d exceeds %d pages coverable by %.3f J effective",
				dirty, coverable, st.batt.EffectiveJoules())
		}
		if st.sagEvent != nil && st.sagEvent.Cancelled() {
			res.SaggedCrashes++
		}
	}

	// (2) Battery-powered flush within provisioned energy. Injected SSD
	// faults stop at the wall: the backup path is engineered to
	// complete (see ssd.SetFaultInjector), and in-flight IOs already
	// carry their fates. A scheduled sag stops at the wall too — the
	// battery does not age over the milliseconds the flush takes — so
	// the flush is charged against the energy present at the crash.
	if st.inj != nil {
		st.inj.Disable()
		if cfg.Corruption {
			ist := st.inj.Stats()
			res.CorruptionsInjected += ist.Lost + ist.Misdirected + ist.Rot
		}
	}
	if st.scrub != nil {
		st.scrub.Stop()
		sst := st.scrub.Stats()
		res.ScrubDetections += sst.Detections
		res.ScrubRepairs += sst.Repairs + sst.RepairKicks
	}
	pm := power.Default()
	joules := flushEnergy(cfg, st.dev, pm, st.region.Size())
	if st.batt != nil {
		st.events.Cancel(st.sagEvent)
		joules = st.batt.EffectiveJoules()
	}
	report := st.mgr.PowerFail(pm, joules)
	if !report.Survived {
		fail("flush of %d pages used %.3f J of %.3f J provisioned",
			report.DirtyAtFailure, report.EnergyUsedJoules, report.EnergyAvailableJoules)
	}

	// (3) Post-flush SSD byte-equals NV-DRAM. In corruption mode the
	// equality cannot hold — silent faults corrupted durable copies on
	// purpose — so the invariant becomes zero *undetected* escapes: every
	// durable page diverging from NV-DRAM truth must fail checksum
	// verification, and a page NV-DRAM has data for but the SSD has no
	// claim about must at least carry a mismatching acked checksum (a
	// fully lost first write).
	if cfg.Corruption {
		for p := 0; p < st.region.NumPages(); p++ {
			page := mmu.PageID(p)
			live := st.region.RawPage(page)
			durable, ok := st.dev.Durable(page)
			detected := st.dev.VerifyPage(page) != nil
			if ok {
				if !bytes.Equal(live, durable) && !detected {
					res.SilentEscapes++
					fail("page %d: durable copy diverges from NV-DRAM and passes verification (silent escape)", page)
				}
				continue
			}
			if detected {
				continue
			}
			for _, b := range live {
				if b != 0 {
					res.SilentEscapes++
					fail("page %d: NV-DRAM has data, SSD has no copy, nothing detected (silent escape)", page)
					break
				}
			}
		}
	} else if err := st.mgr.VerifyDurability(); err != nil {
		fail("durability: %v", err)
	}

	// (4) A rebooted region restored from the SSD matches it. The restore
	// path is always checksum-verified; in corruption mode corrupt pages
	// must land in quarantine (reported loss) and every page that was
	// restored must byte-match NV-DRAM truth at the crash — corrupt bytes
	// handed back as good data are the silent escape this sweep exists to
	// rule out.
	rclock := sim.NewClock()
	restored, rrep, err := recovery.RestoreRegion(rclock, st.dev, nvdram.Config{Size: st.region.Size()})
	if err != nil {
		fail("restore: %v", err)
		return out
	}
	quarantined := make(map[mmu.PageID]bool, len(rrep.Integrity.Quarantined))
	if cfg.Corruption {
		res.RestoreQuarantines += len(rrep.Integrity.Quarantined)
		for _, p := range rrep.Integrity.Quarantined {
			quarantined[p] = true
		}
		if err := recovery.VerifyRestoredWith(restored, st.dev, rrep.Integrity); err != nil {
			fail("restored region: %v", err)
		}
		for p := 0; p < st.region.NumPages(); p++ {
			page := mmu.PageID(p)
			if quarantined[page] {
				continue
			}
			if !bytes.Equal(st.region.RawPage(page), restored.RawPage(page)) {
				res.SilentEscapes++
				fail("page %d: restored bytes diverge from NV-DRAM truth without detection (silent escape)", page)
			}
		}
	} else if err := recovery.VerifyRestored(restored, st.dev); err != nil {
		fail("restored region: %v", err)
	}

	// Quarantined pages overlapping the WAL or ptx mappings are honestly
	// reported loss: the affected completeness checks below are relaxed,
	// but mis-replay (divergent or fabricated records, torn transactions)
	// is never allowed.
	overlapsQuarantine := func(m *core.Mapping) bool {
		lo := mmu.PageID(m.Base() / pageSize)
		hi := mmu.PageID((m.Base() + m.Size() - 1) / pageSize)
		for p := lo; p <= hi; p++ {
			if quarantined[p] {
				return true
			}
		}
		return false
	}
	walLost := overlapsQuarantine(st.walM)
	ptxLost := overlapsQuarantine(st.ptxM)
	if walLost || ptxLost {
		res.ReportedLosses++
	}

	// (5) WAL replays to a consistent prefix.
	payloads, torn, err := recovery.RestoredWAL(restored, st.walM.Base(), st.walM.Size())
	if err != nil {
		if !walLost {
			fail("wal open/replay: %v", err)
		}
	} else {
		if torn {
			res.TornTails++
		}
		if len(payloads) < st.walCommitted && !walLost {
			fail("wal lost committed records: replayed %d < committed %d", len(payloads), st.walCommitted)
		}
		if len(payloads) > len(st.walAttempted) {
			fail("wal replayed %d records, only %d ever appended", len(payloads), len(st.walAttempted))
		}
		for i, p := range payloads {
			if i >= len(st.walAttempted) {
				break
			}
			if string(p) != string(st.walAttempted[i]) {
				fail("wal record %d diverges from appended payload", i)
				break
			}
		}
	}

	// (6) The ptx heap reopens all-or-nothing. With a quarantined page
	// inside the ptx mapping the heap is reported lost — its zeroed pages
	// carry no trustworthy state to check against the shadow model.
	if ptxLost {
		return out
	}
	win := regionWindow{region: restored, base: st.ptxM.Base(), size: st.ptxM.Size()}
	before, _ := undoRecords(win)
	h, err := ptx.Open(win, ptxLogBytes)
	if err != nil {
		fail("ptx open: %v", err)
		return out
	}
	if before > 0 {
		res.Rollbacks++
	}
	var cell [8]byte
	if err := h.View(func(tx *ptx.Tx) error { return tx.Read(cell[:], 0) }); err != nil {
		fail("ptx read: %v", err)
		return out
	}
	val := binary.LittleEndian.Uint64(cell[:])
	for s := 1; s < ptxSlots; s++ {
		var other [8]byte
		if err := h.View(func(tx *ptx.Tx) error { return tx.Read(other[:], int64(s)*8) }); err != nil {
			fail("ptx read slot %d: %v", s, err)
			return out
		}
		if got := binary.LittleEndian.Uint64(other[:]); got != val {
			fail("ptx torn transaction: slot 0 = %d, slot %d = %d", val, s, got)
			return out
		}
	}
	if val != st.ptxCommitted && val != st.ptxCommitted+1 {
		fail("ptx recovered value %d, want %d (committed) or %d (commit raced crash)",
			val, st.ptxCommitted, st.ptxCommitted+1)
	}
	return out
}

// undoRecords counts committed records in a ptx undo log without
// mutating it (a fresh Log over a read path would roll back; this just
// peeks at the record count via a throwaway Open on a copy-free window —
// wal.Open does not write).
func undoRecords(win regionWindow) (int, error) {
	l, err := wal.Open(regionWindow{region: win.region, base: win.base, size: ptxLogBytes})
	if err != nil {
		return 0, err
	}
	return l.Records()
}

// regionWindow adapts a byte range of a region to the Store surfaces the
// wal and ptx packages consume.
type regionWindow struct {
	region *nvdram.Region
	base   int64
	size   int64
}

func (w regionWindow) ReadAt(p []byte, off int64) error  { return w.region.ReadAt(p, w.base+off) }
func (w regionWindow) WriteAt(p []byte, off int64) error { return w.region.WriteAt(p, w.base+off) }
func (w regionWindow) Size() int64                       { return w.size }

// Run executes the sweep: one baseline run to size the step space, then
// one fresh run per crash point.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	var res Result

	base, err := build(cfg)
	if err != nil {
		return res, err
	}
	if err := base.workload(); err != nil {
		return res, fmt.Errorf("crashsweep: baseline run: %w", err)
	}
	if n := base.mgr.DirtyCount(); n != 0 {
		return res, fmt.Errorf("crashsweep: baseline left %d dirty pages after flush", n)
	}
	res.BaselineEvents = base.events.Fired()
	base.mgr.Close()

	stride := cfg.Stride
	if stride == 0 {
		stride = res.BaselineEvents / uint64(cfg.MaxCrashPoints)
		if stride == 0 {
			stride = 1
		}
	}
	res.Stride = stride

	for step := stride; step <= res.BaselineEvents && res.CrashPoints+res.Completed < cfg.MaxCrashPoints; step += stride {
		st, err := build(cfg)
		if err != nil {
			return res, err
		}
		crasher := faultinject.NewCrasher(st.events)
		crasher.ArmAt(step)
		var runErr error
		cp, crashed := crasher.Run(func() { runErr = st.workload() })
		if !crashed {
			if runErr != nil {
				return res, fmt.Errorf("crashsweep: run armed at step %d: %w", step, runErr)
			}
			// The crash point landed past this run's end (event counts
			// can drift slightly once faults are injected): the run
			// completed as a clean shutdown instead.
			res.Completed++
			st.mgr.Close()
			continue
		}
		res.CrashPoints++
		crasher.Disarm()
		res.Violations = append(res.Violations, verifyCrash(st, cp.Step, &res)...)
	}
	return res, nil
}
