package crashsweep

import (
	"os"
	"strconv"
	"testing"

	"viyojit/internal/sim"
)

func checkSensorResult(t *testing.T, res SensorSweepResult, wantCrashes int) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("step %d: %s", v.Step, v.Msg)
	}
	if res.CrashPoints < wantCrashes {
		t.Errorf("only %d crash points, want ≥ %d", res.CrashPoints, wantCrashes)
	}
	if res.EmergencyEnters != 0 {
		t.Errorf("%d spurious emergency escalations; conservative fusion should never zero this budget", res.EmergencyEnters)
	}
	// Evidence the sweep exercised what it claims: gauges actually
	// lied, the fused layer actually rejected readings, the budget
	// actually moved, and the fusion actually fell back to a single
	// usable estimator somewhere.
	if res.Episodes["lie-high"] == 0 {
		t.Error("no lie-high episode ever ran; the headline fault went untested")
	}
	if res.Episodes["dropout"] == 0 {
		t.Error("no dropout episode ever ran")
	}
	if res.Detections["bounds"]+res.Detections["rate"] == 0 {
		t.Error("no over-report was ever rejected")
	}
	if res.Detections["stale"] == 0 {
		t.Error("the staleness watchdog never fired")
	}
	if res.Retunes == 0 {
		t.Error("the budget never moved; telemetry was not actually driving it")
	}
	if res.SoloSamples == 0 {
		t.Error("fusion never degraded to a single estimator; the solo-margin bound went unwitnessed")
	}
	if res.MinFusedFraction > 0.99 {
		t.Errorf("min fused/true fraction %.3f; the estimate never turned conservative", res.MinFusedFraction)
	}
	if res.MinFusedFraction < 0.25 {
		t.Errorf("min fused/true fraction %.3f; under-reporting deeper than any configured fault explains", res.MinFusedFraction)
	}
	if res.AckedMutations == 0 {
		t.Error("no mutation was ever acknowledged before a crash")
	}
	// MTTD ceilings per audited class (auditMTTD already enforced the
	// per-episode deadline; this pins the observed worst case in the
	// result for the experiment tables).
	interval := 50 * sim.Microsecond
	bounds := map[string]sim.Duration{
		"lie-high": 2 * interval,
		"spike":    2 * interval,
		"drift":    3 * interval,
		"dropout":  interval*5/2 + 3*interval,
	}
	for class, worst := range res.MaxMTTD {
		if bound, ok := bounds[class]; ok && worst > bound {
			t.Errorf("%s worst MTTD %v exceeds %v", class, worst, bound)
		}
	}
}

// The acceptance sweep: 200 seeded power failures under concurrent
// YCSB-A serving with the voltage gauge lying up to 50% high — zero
// flushes exceeding true remaining energy, dirty within the
// fused-derived budget at every sample, bounded detection latency per
// fault class, and the exactly-once serving oracle intact.
func TestSweepSensorCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("full sensor crash sweep is slow; run without -short")
	}
	res, err := RunSensor(SensorSweepConfig{Serve: ServeConfig{Seed: 0x5E45_0FA1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline %d events, stride %d; %d crash points, %d completed runs; max dirty at crash %d",
		res.BaselineEvents, res.Stride, res.CrashPoints, res.Completed, res.MaxDirtyAtCrash)
	t.Logf("episodes %v; detections %v; worst MTTD %v", res.Episodes, res.Detections, res.MaxMTTD)
	t.Logf("min fused/true %.3f; %d retunes, %d solo samples, %d blind samples, %d acked mutations",
		res.MinFusedFraction, res.Retunes, res.SoloSamples, res.BlindSamples, res.AckedMutations)
	checkSensorResult(t, res, 200)
}

// A small always-on sweep so the telemetry chain is crash-tested on
// every `go test ./...`, -short included.
func TestSweepSensorCrashQuick(t *testing.T) {
	res, err := RunSensor(SensorSweepConfig{Serve: ServeConfig{
		Seed:           0xFA57,
		Clients:        8,
		OpsPerClient:   12,
		MaxCrashPoints: 20,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("quick: %d crash points, min fused/true %.3f, episodes %v",
		res.CrashPoints, res.MinFusedFraction, res.Episodes)
	checkSensorResult(t, res, 20)
}

// CI seed matrix: CRASHSWEEP_SEED varies the fault schedules and client
// interleavings across jobs without new test code.
func TestSweepSensorSeedMatrix(t *testing.T) {
	env := os.Getenv("CRASHSWEEP_SEED")
	if env == "" {
		t.Skip("set CRASHSWEEP_SEED to run the seed matrix")
	}
	seed, err := strconv.ParseUint(env, 0, 64)
	if err != nil {
		t.Fatalf("bad CRASHSWEEP_SEED %q: %v", env, err)
	}
	res, err := RunSensor(SensorSweepConfig{Serve: ServeConfig{Seed: seed, MaxCrashPoints: 60}})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seed %#x: %d crash points, min fused/true %.3f, worst MTTD %v",
		seed, res.CrashPoints, res.MinFusedFraction, res.MaxMTTD)
	checkSensorResult(t, res, 60)
}
