// nested.go is the cascading-failure sweep: where servecrash.go fails
// power exactly once and recovers on a fresh, fully-provisioned stack,
// RunNested crashes *into the recovery itself* — up to RecrashDepth
// cascaded re-crashes at seeded event steps inside each outer crash
// point's recovery, with the recovery running on a possibly *shrunken*
// dirty budget (BudgetScale < 1: the sagged-battery regime where a
// repeated outage leaves less energy than the run that crashed).
//
// Each recovery attempt follows the restartable pipeline:
//
//	seed durable set → restore region (volatile, re-run every attempt)
//	→ open persistent cursor, BeginRecovery(recovery budget)
//	→ reopen heap/store/journal (WAL replay: rebuild volatile tables)
//	→ serve.ReplayPendingWith (intent redo: durable, cursor-recorded
//	  per record, budget-drained incrementally)
//	→ emergency drain to a clean durable state → cursor Finish
//
// and the sweep audits, at every crash depth:
//
//  1. dirty ≤ the CURRENT (scaled) budget at the crash instant;
//  2. the re-crash's battery flush completes within the energy
//     provisioned for that scaled budget, and SSD = NV-DRAM after;
//  3. the persistent cursor never regresses across attempts
//     ((incarnation, attempt, phase, record) is monotone) and never
//     falls back to fresh — a torn cursor write must cost one write,
//     not the cursor;
//  4. once recovery finally completes, the same per-key exactly-once
//     oracle as the single-crash sweep: every acked mutation applied
//     exactly once, in-doubt ops land cleanly, retries dedup.
//
// The durable-source discipline matters: each attempt seeds the ENTIRE
// durable page set into its fresh SSD before restoring a single page,
// so a crash mid-restore leaves the next attempt a complete durable
// source — restore is re-runnable precisely because it never consumes
// what it restores from.
package crashsweep

import (
	"fmt"

	"viyojit/internal/core"
	"viyojit/internal/faultinject"
	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
	"viyojit/internal/nvdram"
	"viyojit/internal/obs"
	"viyojit/internal/pheap"
	"viyojit/internal/power"
	"viyojit/internal/recovery"
	"viyojit/internal/serve"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// NestedConfig parameterises a cascading-failure sweep.
type NestedConfig struct {
	ServeConfig
	// RecrashDepth is the maximum cascaded re-crashes injected inside
	// one outer crash point's recovery; 0 selects 3. The attempt after
	// the last allowed re-crash runs to completion unarmed.
	RecrashDepth int
	// BudgetScale scales the recovery dirty budget relative to the
	// serving BudgetPages (floored at one page): 1.0 recovers on a
	// fresh battery, 0.5 on one that sagged to half between outages.
	// 0 selects 1.0.
	BudgetScale float64
	// InnerSpan bounds the seeded in-recovery crash step: each re-crash
	// arms at a step uniform in [1, InnerSpan]. 0 (the default)
	// calibrates the span per attempt by running an unarmed shadow
	// attempt first — attempts never mutate their durable source, so
	// the shadow is free — which makes every armed step actually fire
	// and spreads re-crashes across all phases (restore dominates the
	// step count; redo and drain sit at the tail). A fixed span may arm
	// past the attempt's last event, completing the recovery instead.
	InnerSpan uint64
	// Obs receives the recovery instruments (recovery_resumes_total,
	// recovery_redo_pages, recovery_budget_stalls, cursor counters)
	// accumulated across the whole sweep; nil uses a private registry.
	Obs *obs.Registry
}

func (c NestedConfig) withDefaults() NestedConfig {
	c.ServeConfig = c.ServeConfig.withDefaults()
	if c.CursorPages == 0 {
		c.CursorPages = 1
	}
	// The nested sweep exists to crash INTO recovery, and recovery's
	// redo phase only has work when the outer crash strands an
	// in-flight intent — which requires strike instants inside the
	// Begin→Complete window.
	c.CommitMarkers = true
	if c.RecrashDepth == 0 {
		c.RecrashDepth = 3
	}
	if c.BudgetScale == 0 {
		c.BudgetScale = 1.0
	}
	return c
}

// NestedResult summarises a cascading-failure sweep. As with
// ServeResult, the evidence counters let tests prove the sweep
// exercised each regime — crashes at every depth, in every phase,
// resumed attempts, shrunken budgets — not just that nothing failed.
type NestedResult struct {
	BaselineEvents uint64
	Stride         uint64
	// OuterCrashes counts runs that power-failed mid-traffic; Completed
	// counts armed runs whose step was never reached.
	OuterCrashes int
	Completed    int
	// InnerCrashes totals cascaded re-crashes across all recoveries;
	// InnerByDepth[d-1] counts points that reached re-crash depth d;
	// InnerByPhase counts re-crashes by the recovery phase they struck.
	InnerCrashes int
	InnerByDepth []int
	InnerByPhase map[string]int
	// Resumes counts recovery attempts that found an unfinished
	// recovery in the cursor and resumed it; Fallbacks counts corrupt
	// cursors (always a violation in this sweep: crash-atomic slot
	// writes must never corrupt).
	Resumes   int
	Fallbacks int
	// RecoveryBudget is the scaled dirty budget recoveries ran under.
	RecoveryBudget int
	// MaxDirtyAtCrash / MaxDirtyAtInnerCrash are the largest dirty sets
	// at outer / in-recovery crash instants (≤ their respective budgets
	// unless a violation was recorded).
	MaxDirtyAtCrash      int
	MaxDirtyAtInnerCrash int
	// RedoneIntents totals the redo workload recovery replayed: for each
	// outer crash point, the max across its attempts of cursor-recorded
	// plus still-pending redos — an accounting that survives cascaded
	// crashes mid-replay, where the crashing attempt's own stats are
	// lost. RedoPages and BudgetStalls are the replay's
	// manager-accounted page admissions and forced cleans — the
	// budget-aware drain at work.
	RedoneIntents int
	RedoPages     uint64
	BudgetStalls  uint64
	// Retry-stream evidence, as in ServeResult.
	AckedMutations   uint64
	InDoubtReplayed  int
	ReplayDeduped    int
	ReplayFresh      int
	AckedRetryDedups int
	Violations       []Violation
}

// nestedAttempt is one recovery attempt's carcass: whatever was built
// before the attempt completed or a cascaded crash unwound it.
type nestedAttempt struct {
	run    *serveRun // complete stack; nil if the attempt crashed
	dev    *ssd.SSD  // always set: the next attempt's durable source
	mgr    *core.Manager
	cursor *recovery.Cursor
	phase  recovery.Phase // live phase at the crash instant
	replay serve.ReplayStats
	fired  uint64 // events the attempt fired (its crash-step space)
	// startRec and pending snapshot the redo workload the instant the
	// journal reopens: startRec is the cursor's durably-recorded redo
	// count entering this attempt, pending what the journal still holds
	// in flight. startRec+pending bounds the incarnation's total redo
	// work from below even when a cascaded crash later discards
	// att.replay — the sweep's redo accounting survives crashed
	// attempts by taking the max across them.
	startRec uint64
	pending  int
}

// marker schedules and fires a no-op event: a crash point. Restore and
// table-rebuild phases do no event-queue work of their own, so the
// sweep plants one marker per unit of work to give the Crasher
// somewhere to strike.
func marker(clock *sim.Clock, events *sim.Queue) {
	events.Schedule(clock.Now(), func(sim.Time) {})
	events.RunUntil(clock, clock.Now())
}

// recoverNestedAttempt runs one restartable recovery attempt over the
// durable pages of prev, under the scaled budget, with a crash armed at
// armStep (0 = unarmed). It returns the attempt carcass and whether the
// armed crash fired.
func recoverNestedAttempt(cfg NestedConfig, prev *ssd.SSD, regionSize int64, recBudget int, armStep uint64, reg *obs.Registry) (*nestedAttempt, bool, error) {
	att := &nestedAttempt{phase: recovery.PhaseRestore}
	clock := sim.NewClock()
	events := sim.NewQueue()
	crasher := faultinject.NewCrasher(events)
	if armStep > 0 {
		crasher.ArmAt(armStep)
	}
	var buildErr error
	_, crashed := crasher.Run(func() {
		buildErr = att.build(cfg, clock, events, prev, regionSize, recBudget, reg)
	})
	crasher.Disarm()
	att.fired = events.Fired()
	if buildErr != nil && !crashed {
		return att, false, buildErr
	}
	return att, crashed, nil
}

func (att *nestedAttempt) build(cfg NestedConfig, clock *sim.Clock, events *sim.Queue, prev *ssd.SSD, regionSize int64, recBudget int, reg *obs.Registry) error {
	st := &serveRun{cfg: cfg.ServeConfig, clock: clock, events: events}
	var err error
	st.region, err = nvdram.New(clock, nvdram.Config{Size: regionSize})
	if err != nil {
		return err
	}
	st.dev = ssd.New(clock, events, cfg.SSD)
	att.dev = st.dev

	// Seed the complete durable set BEFORE restoring anything: if the
	// restore below is cut down by a cascaded crash, att.dev must still
	// be a whole durable source for the next attempt.
	pages := prev.DurablePageList()
	for _, page := range pages {
		if data, ok := prev.Durable(page); ok {
			st.dev.SeedDurable(page, data)
		}
	}
	// Region restore: volatile effects, re-run every attempt. One
	// marker per page puts crash points inside the phase.
	for _, page := range pages {
		if err := st.region.RestorePage(page, st.dev.ReadPage(page)); err != nil {
			return err
		}
		marker(clock, events)
	}

	st.mgr, err = core.NewManager(clock, events, st.region, st.dev, core.Config{
		DirtyBudgetPages: recBudget,
		Epoch:            cfg.Epoch,
	})
	if err != nil {
		return err
	}
	att.mgr = st.mgr
	// Same names, sizes, order as buildServe: the first-fit allocator's
	// recovery contract.
	if st.heapM, err = st.mgr.Map("heap", int64(cfg.HeapPages)*pageSize); err != nil {
		return err
	}
	if st.jM, err = st.mgr.Map("intent", int64(cfg.JournalPages)*pageSize); err != nil {
		return err
	}
	if st.curM, err = st.mgr.Map("cursor", int64(cfg.CursorPages)*pageSize); err != nil {
		return err
	}

	// The cursor is only readable once its region pages are restored —
	// which is why restore is a volatile phase the cursor cannot cover.
	if st.cursor, err = recovery.OpenCursor(st.curM, reg); err != nil {
		return err
	}
	att.cursor = st.cursor
	prog, _, err := st.cursor.BeginRecovery(recBudget)
	if err != nil {
		return err
	}
	att.startRec = prog.Record
	marker(clock, events)

	att.phase = recovery.PhaseWALReplay
	if err := st.cursor.Advance(recovery.PhaseWALReplay, prog.Record); err != nil {
		return err
	}
	heap, err := pheap.Open(st.heapM)
	if err != nil {
		return fmt.Errorf("reopening heap: %w", err)
	}
	marker(clock, events)
	if st.store, err = kvstore.Open(heap); err != nil {
		return fmt.Errorf("reopening store: %w", err)
	}
	marker(clock, events)
	if st.journal, err = intent.Open(st.jM, nil); err != nil {
		return fmt.Errorf("reopening journal: %w", err)
	}
	att.pending = len(st.journal.Pending())
	marker(clock, events)

	att.phase = recovery.PhaseIntentRedo
	att.replay, err = serve.ReplayPendingWith(st.store, st.journal, serve.ReplayOptions{
		Cursor: st.cursor,
		Mgr:    st.mgr,
		Obs:    reg,
		// The redo loop does no event-queue work of its own when the
		// budget never forces a clean; these markers make both redo
		// crash windows (completed-but-uncursored, cursor-advanced)
		// reachable by the step-armed Crasher.
		Step: func() { marker(clock, events) },
	})
	if err != nil {
		return err
	}

	att.phase = recovery.PhaseDrain
	if err := st.cursor.Advance(recovery.PhaseDrain, st.cursor.Progress().Record); err != nil {
		return err
	}
	// Drain the re-dirtied set so recovery hands over a clean durable
	// state: a re-crash right after recovery must have nothing to lose.
	if left := st.mgr.EnterEmergencyFlush(); left != 0 {
		return fmt.Errorf("recovery drain left %d dirty pages", left)
	}
	if err := st.mgr.Resume(core.StateHealthy); err != nil {
		return err
	}
	if err := st.cursor.Finish(); err != nil {
		return err
	}
	att.phase = recovery.PhaseDone

	// Serving resumes on the full budget: the scaled figure was the
	// recovery's constraint, not the recharged steady state's.
	if err := st.mgr.SetDirtyBudget(cfg.BudgetPages); err != nil {
		return err
	}
	if st.srv, err = serve.New(clock, events, st.mgr, st.store, serve.Config{Journal: st.journal}); err != nil {
		return err
	}
	att.run = st
	return nil
}

// runNestedPoint executes one outer crash point: serve, crash, flush,
// then recover through up to RecrashDepth cascaded re-crashes, then
// verify the survivor stack against the retry streams and the oracle.
func runNestedPoint(cfg NestedConfig, step uint64, innerRNG *sim.RNG, keys [][]byte, reg *obs.Registry, res *NestedResult) error {
	run, err := buildServe(cfg.ServeConfig)
	if err != nil {
		return err
	}
	crasher := faultinject.NewCrasher(run.events)
	crasher.ArmAt(step)
	if err := run.srv.Start(); err != nil {
		return err
	}
	var logs []*clientLog
	crasher.Run(func() {
		logs = driveClients(cfg.ServeConfig, run.srv, keys)
		run.srv.Stop()
		if _, crashed := crasher.Crashed(); !crashed {
			run.mgr.FlushAll()
		}
	})
	cp, crashed := crasher.Crashed()
	crasher.Disarm()

	var out []Violation
	fail := func(format string, args ...any) {
		out = append(out, Violation{Step: cp.Step, Msg: fmt.Sprintf(format, args...)})
	}
	defer func() { res.Violations = append(res.Violations, out...) }()
	for _, lg := range logs {
		if lg.err != nil {
			fail("client error: %v", lg.err)
		}
		res.AckedMutations += uint64(len(lg.acked))
	}

	if !crashed {
		for _, lg := range logs {
			if lg.inDoubt != nil {
				fail("clean run left client %d seq %d unacknowledged", lg.id, lg.inDoubt.seq)
			}
		}
		if err := run.mgr.VerifyDurability(); err != nil {
			fail("clean-run durability: %v", err)
		}
		checkOracle(run.store, keys, oracleExpect(logs, nil), fail)
		run.mgr.Close()
		res.Completed++
		return nil
	}
	res.OuterCrashes++

	// Outer crash: full serving budget, full provisioned energy.
	pm := power.Default()
	dirty, budget := run.mgr.DirtyCount(), run.mgr.EffectiveDirtyBudget()
	if dirty > res.MaxDirtyAtCrash {
		res.MaxDirtyAtCrash = dirty
	}
	if dirty > budget {
		fail("dirty count %d exceeds effective budget %d at outer crash", dirty, budget)
	}
	report := run.mgr.PowerFail(pm, flushEnergy(Config{BudgetPages: cfg.BudgetPages}, run.dev, pm, run.region.Size()))
	if !report.Survived {
		fail("outer flush of %d pages used %.3f J of %.3f J provisioned",
			report.DirtyAtFailure, report.EnergyUsedJoules, report.EnergyAvailableJoules)
	}
	if err := run.mgr.VerifyDurability(); err != nil {
		fail("outer durability: %v", err)
	}

	// The cascading-recovery loop. Each iteration is one attempt; a
	// cascaded crash flushes on the scaled budget's energy and hands the
	// next attempt its SSD as the durable source.
	recBudget := int(cfg.BudgetScale * float64(cfg.BudgetPages))
	if recBudget < 1 {
		recBudget = 1
	}
	res.RecoveryBudget = recBudget
	regionSize := run.region.Size()
	prev := run.dev
	var lastCursor recovery.Progress
	haveCursor := false
	var rec *serveRun
	// pointRedo is this incarnation's redo workload, taken as a max
	// across attempts: a cascaded crash mid-replay discards att.replay,
	// but every attempt that reaches the journal reopen observes
	// startRec+pending, and every attempt that finishes its replay
	// observes StartRecord+Redone.
	pointRedo := 0
	for depth := 0; ; {
		armAt := uint64(0)
		if depth < cfg.RecrashDepth {
			span := cfg.InnerSpan
			if span == 0 {
				// Calibrate: an unarmed shadow attempt counts this
				// depth's event space. Attempts seed their own SSD and
				// never write to prev, so the shadow leaves no trace;
				// the real attempt below replays the identical
				// single-goroutine schedule, so an arm in [1, fired]
				// is guaranteed to strike.
				shadow, _, serr := recoverNestedAttempt(cfg, prev, regionSize, recBudget, 0, nil)
				if serr != nil {
					fail("shadow recovery at depth %d: %v", depth, serr)
					return nil
				}
				span = shadow.fired
			}
			if span == 0 {
				span = 1
			}
			armAt = 1 + innerRNG.Uint64()%span
		}
		att, acrashed, aerr := recoverNestedAttempt(cfg, prev, regionSize, recBudget, armAt, reg)
		if aerr != nil {
			fail("recovery attempt at depth %d: %v", depth, aerr)
			return nil
		}

		// Cursor accounting and the monotonicity oracle. The cursor
		// object's Progress is its last durable write: every Advance
		// lands a page-atomic slot write through the budget-accounted
		// mapping, and the flush below makes it durable.
		if att.cursor != nil {
			if att.cursor.Resumed() {
				res.Resumes++
			}
			if att.cursor.FellBack() {
				res.Fallbacks++
				fail("cursor fell back to fresh at depth %d: slot writes must be crash-atomic", depth)
			}
			p := att.cursor.Progress()
			if haveCursor && p.Less(lastCursor) {
				fail("cursor regressed at depth %d: %+v -> %+v", depth, lastCursor, p)
			}
			lastCursor, haveCursor = p, true
		}
		if n := int(att.startRec) + att.pending; n > pointRedo {
			pointRedo = n
		}
		if n := int(att.replay.StartRecord) + att.replay.Redone; n > pointRedo {
			pointRedo = n
		}
		res.RedoPages += att.replay.PagesDirtied
		res.BudgetStalls += att.replay.BudgetStalls

		if !acrashed {
			rec = att.run
			break
		}
		depth++
		res.InnerCrashes++
		for len(res.InnerByDepth) < depth {
			res.InnerByDepth = append(res.InnerByDepth, 0)
		}
		res.InnerByDepth[depth-1]++
		res.InnerByPhase[att.phase.String()]++

		// The audits at the in-recovery crash instant: dirty ≤ the
		// SCALED budget, and the flush fits the scaled energy.
		if att.mgr != nil {
			d := att.mgr.DirtyCount()
			if d > res.MaxDirtyAtInnerCrash {
				res.MaxDirtyAtInnerCrash = d
			}
			if d > recBudget {
				fail("dirty count %d exceeds recovery budget %d at depth-%d crash (phase %v)", d, recBudget, depth, att.phase)
			}
			rep := att.mgr.PowerFail(pm, flushEnergy(Config{BudgetPages: recBudget}, att.dev, pm, regionSize))
			if !rep.Survived {
				fail("depth-%d flush of %d pages used %.3f J of %.3f J (recovery budget %d)",
					depth, rep.DirtyAtFailure, rep.EnergyUsedJoules, rep.EnergyAvailableJoules, recBudget)
			}
			if err := att.mgr.VerifyDurability(); err != nil {
				fail("depth-%d durability: %v", depth, err)
			}
		}
		prev = att.dev
	}
	res.RedoneIntents += pointRedo

	// The survivor: rebuilt dedup table must equal the record walk, and
	// the retry streams must land exactly once on the oracle.
	walked, walkTorn, err := intent.RebuildTable(rec.jM)
	if err != nil {
		fail("record walk: %v", err)
	} else {
		if walkTorn != rec.journal.TornOpen() {
			fail("torn-tail verdicts diverge: Open %v, record walk %v", rec.journal.TornOpen(), walkTorn)
		}
		compareTables(rec.journal.Snapshot(), walked, fail)
	}
	tally, err := replayRetryStreams(rec, logs, keys, fail)
	if err != nil {
		return err
	}
	res.InDoubtReplayed += tally.inDoubt
	res.ReplayDeduped += tally.deduped
	res.ReplayFresh += tally.fresh
	res.AckedRetryDedups += tally.ackedDedups
	checkOracle(rec.store, keys, oracleExpect(logs, tally.replayed), fail)
	rec.mgr.Close()
	return nil
}

// RunNested executes the cascading-failure sweep: an un-crashed
// calibration run sizes the outer step lattice, then each armed run
// crashes mid-traffic and recovers through seeded cascaded re-crashes.
// Outer crash points and inner re-crash steps both derive from
// cfg.Seed; as with RunServe, goroutine interleaving makes the serving
// half non-bit-replayable, so every invariant is checked against the
// run's own ack log.
func RunNested(cfg NestedConfig) (NestedResult, error) {
	cfg = cfg.withDefaults()
	res := NestedResult{InnerByPhase: make(map[string]int)}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	keys := makeKeys(cfg.Keys)

	base, err := buildServe(cfg.ServeConfig)
	if err != nil {
		return res, err
	}
	if err := base.srv.Start(); err != nil {
		return res, err
	}
	logs := driveClients(cfg.ServeConfig, base.srv, keys)
	base.srv.Stop()
	res.BaselineEvents = base.events.Fired()
	for _, lg := range logs {
		if lg.err != nil {
			return res, fmt.Errorf("crashsweep: nested baseline client: %w", lg.err)
		}
		if lg.inDoubt != nil {
			return res, fmt.Errorf("crashsweep: nested baseline left client %d seq %d unacked", lg.id, lg.inDoubt.seq)
		}
	}
	base.mgr.FlushAll()
	base.mgr.Close()
	if res.BaselineEvents == 0 {
		return res, fmt.Errorf("crashsweep: nested baseline fired no events")
	}

	stride := cfg.Stride
	if stride == 0 {
		stride = res.BaselineEvents / uint64(cfg.MaxCrashPoints)
		if stride == 0 {
			stride = 1
		}
	}
	res.Stride = stride
	innerRNG := sim.NewRNG(cfg.Seed ^ 0x4E5E57ED)

	maxAttempts := 4 * cfg.MaxCrashPoints
	for i := 1; res.OuterCrashes < cfg.MaxCrashPoints && i <= maxAttempts; i++ {
		step := uint64(i) * stride
		if step > res.BaselineEvents {
			pass := step / res.BaselineEvents
			step = step%res.BaselineEvents + pass
			if step == 0 {
				step = 1
			}
		}
		if err := runNestedPoint(cfg, step, innerRNG, keys, reg, &res); err != nil {
			return res, fmt.Errorf("crashsweep: nested run armed at step %d: %w", step, err)
		}
	}
	return res, nil
}
