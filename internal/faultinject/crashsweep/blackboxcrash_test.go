package crashsweep

import (
	"os"
	"strconv"
	"testing"
)

func logBlackBox(t *testing.T, res BlackBoxResult) {
	t.Helper()
	sw := res.Serve
	t.Logf("%d crash points, %d completed; forensic exact %d, drop-relaxed %d; recorder dirty at %d crashes; %d ring appends, %d shed",
		sw.CrashPoints, sw.Completed, sw.ForensicExact, sw.ForensicDropped,
		sw.RecorderDirtyCrashes, sw.RecorderAppends, sw.RecorderDrops)
	t.Logf("healthy: off %d ns / %d acked, on %d ns / %d acked, goodput delta %.4f (%d ring appends, %d shed)",
		res.HealthyOffNs, res.HealthyOffAcked, res.HealthyOnNs, res.HealthyOnAcked,
		res.GoodputDeltaFrac, res.HealthyRecorderAppends, res.HealthyRecorderDrops)
}

// The acceptance sweep: 200 power failures under concurrent YCSB-A
// serving, every one recovering a forensic report audited against the
// crash-instant oracle, the recorder's pages audited inside the dirty
// budget, and the healthy-run overhead of the always-on recorder
// bounded under 2% of goodput.
func TestSweepBlackBox(t *testing.T) {
	if testing.Short() {
		t.Skip("full blackbox crash sweep is slow; run without -short")
	}
	res, err := RunBlackBox(ServeConfig{Seed: 0xB1AC_B0C5})
	if err != nil {
		t.Fatal(err)
	}
	logBlackBox(t, res)
	for _, v := range res.Serve.Violations {
		t.Errorf("step %d: %s", v.Step, v.Msg)
	}
	if res.Serve.CrashPoints < 200 {
		t.Errorf("only %d crash points, want ≥ 200", res.Serve.CrashPoints)
	}
	// Every crashed run with a drop-free ring must have audited exactly;
	// together the two buckets must cover every crash point.
	if got := res.Serve.ForensicExact + res.Serve.ForensicDropped; got != res.Serve.CrashPoints {
		t.Errorf("forensic audits cover %d of %d crash points", got, res.Serve.CrashPoints)
	}
	// Evidence the audits bit on real state, not vacuous rings.
	if res.Serve.ForensicExact == 0 {
		t.Error("no crash ever audited an exact forensic match; the oracle comparison went untested")
	}
	if res.Serve.RecorderDirtyCrashes == 0 {
		t.Error("no crash ever found a dirty recorder page; budget accounting of the ring went unwitnessed")
	}
	if res.Serve.RecorderAppends == 0 {
		t.Error("the recorder never appended during crashed runs")
	}
	// The overhead bound: always-on forensics costs < 2% of goodput.
	if res.HealthyOnAcked != res.HealthyOffAcked {
		t.Errorf("healthy runs did different work: %d vs %d acked", res.HealthyOnAcked, res.HealthyOffAcked)
	}
	if res.GoodputDeltaFrac >= 0.02 {
		t.Errorf("recorder-on goodput delta %.4f, want < 0.02", res.GoodputDeltaFrac)
	}
	if res.HealthyRecorderAppends == 0 {
		t.Error("healthy recorder-on run appended nothing; the overhead measurement is vacuous")
	}
}

// A small always-on sweep so the forensic audit machinery runs on every
// `go test ./...`, -short included.
func TestSweepBlackBoxQuick(t *testing.T) {
	res, err := RunBlackBox(ServeConfig{
		Seed:           0xB1AC,
		Clients:        8,
		OpsPerClient:   12,
		MaxCrashPoints: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	logBlackBox(t, res)
	for _, v := range res.Serve.Violations {
		t.Errorf("step %d: %s", v.Step, v.Msg)
	}
	if res.Serve.CrashPoints < 25 {
		t.Errorf("only %d crash points, want ≥ 25", res.Serve.CrashPoints)
	}
	if got := res.Serve.ForensicExact + res.Serve.ForensicDropped; got != res.Serve.CrashPoints {
		t.Errorf("forensic audits cover %d of %d crash points", got, res.Serve.CrashPoints)
	}
	if res.GoodputDeltaFrac >= 0.02 {
		t.Errorf("recorder-on goodput delta %.4f, want < 0.02", res.GoodputDeltaFrac)
	}
}

// CI seed matrix: CRASHSWEEP_SEED varies client schedules and key draws
// across jobs without new test code.
func TestSweepBlackBoxSeedMatrix(t *testing.T) {
	env := os.Getenv("CRASHSWEEP_SEED")
	if env == "" {
		t.Skip("set CRASHSWEEP_SEED to run the seed matrix")
	}
	seed, err := strconv.ParseUint(env, 0, 64)
	if err != nil {
		t.Fatalf("bad CRASHSWEEP_SEED %q: %v", env, err)
	}
	res, err := RunBlackBox(ServeConfig{Seed: seed, MaxCrashPoints: 60})
	if err != nil {
		t.Fatal(err)
	}
	logBlackBox(t, res)
	for _, v := range res.Serve.Violations {
		t.Errorf("seed %#x step %d: %s", seed, v.Step, v.Msg)
	}
	if res.Serve.CrashPoints < 60 {
		t.Errorf("seed %#x: only %d crash points, want ≥ 60", seed, res.Serve.CrashPoints)
	}
	if got := res.Serve.ForensicExact + res.Serve.ForensicDropped; got != res.Serve.CrashPoints {
		t.Errorf("seed %#x: forensic audits cover %d of %d crash points", seed, got, res.Serve.CrashPoints)
	}
}
