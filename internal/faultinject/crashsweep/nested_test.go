package crashsweep

import (
	"os"
	"strconv"
	"testing"

	"viyojit/internal/obs"
	"viyojit/internal/recovery"
)

// requireNestedClean asserts the sweep's hard invariants: zero
// violations of any kind, and dirty bounded by the budget in force at
// each crash depth.
func requireNestedClean(t *testing.T, res NestedResult, cfg NestedConfig) {
	t.Helper()
	for i, v := range res.Violations {
		if i >= 12 {
			t.Errorf("... and %d more", len(res.Violations)-i)
			break
		}
		t.Errorf("step %d: %s", v.Step, v.Msg)
	}
	if res.MaxDirtyAtCrash > cfg.BudgetPages {
		t.Errorf("outer MaxDirtyAtCrash %d exceeds budget %d", res.MaxDirtyAtCrash, cfg.BudgetPages)
	}
	if res.MaxDirtyAtInnerCrash > res.RecoveryBudget {
		t.Errorf("MaxDirtyAtInnerCrash %d exceeds recovery budget %d", res.MaxDirtyAtInnerCrash, res.RecoveryBudget)
	}
	if res.Fallbacks != 0 {
		t.Errorf("cursor fell back %d times; crash-atomic slot writes must never corrupt", res.Fallbacks)
	}
}

// TestSweepNestedCrash is ISSUE 8's acceptance run: 200 outer crash
// points under concurrent serving, each recovered through up to 3
// cascaded in-recovery re-crashes — half the points on a full recovery
// budget, half on one scaled to 0.5× (the sagged-battery regime) — with
// zero exactly-once violations, zero cursor regressions, and dirty ≤
// the current budget at every crash instant.
func TestSweepNestedCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("nested sweep is heavy; run without -short")
	}
	reg := obs.NewRegistry()
	var total NestedResult
	total.InnerByPhase = make(map[string]int)
	for _, scale := range []float64{1.0, 0.5} {
		cfg := NestedConfig{
			ServeConfig:  ServeConfig{Seed: 0x5EED, MaxCrashPoints: 100},
			RecrashDepth: 3,
			BudgetScale:  scale,
			Obs:          reg,
		}
		res, err := RunNested(cfg)
		if err != nil {
			t.Fatalf("RunNested(scale=%v): %v", scale, err)
		}
		full := cfg.withDefaults()
		requireNestedClean(t, res, full)
		wantBudget := int(scale * float64(full.BudgetPages))
		if res.RecoveryBudget != wantBudget {
			t.Errorf("scale %v: recovery budget %d, want %d", scale, res.RecoveryBudget, wantBudget)
		}
		if res.OuterCrashes != 100 {
			t.Errorf("scale %v: %d outer crashes, want 100", scale, res.OuterCrashes)
		}
		total.OuterCrashes += res.OuterCrashes
		total.InnerCrashes += res.InnerCrashes
		total.Resumes += res.Resumes
		total.RedoneIntents += res.RedoneIntents
		total.AckedMutations += res.AckedMutations
		total.InDoubtReplayed += res.InDoubtReplayed
		for ph, n := range res.InnerByPhase {
			total.InnerByPhase[ph] += n
		}
		for i, n := range res.InnerByDepth {
			for len(total.InnerByDepth) <= i {
				total.InnerByDepth = append(total.InnerByDepth, 0)
			}
			total.InnerByDepth[i] += n
		}
	}

	// Evidence the sweep exercised the regimes it claims to cover.
	if total.InnerCrashes == 0 {
		t.Fatalf("no cascaded re-crashes fired; the nested sweep never crashed into recovery")
	}
	if len(total.InnerByDepth) < 2 || total.InnerByDepth[1] == 0 {
		t.Errorf("no point reached re-crash depth 2: depths %v", total.InnerByDepth)
	}
	for _, phase := range []recovery.Phase{recovery.PhaseRestore, recovery.PhaseWALReplay, recovery.PhaseIntentRedo, recovery.PhaseDrain} {
		if total.InnerByPhase[phase.String()] == 0 {
			t.Errorf("no re-crash struck the %v phase: %v", phase, total.InnerByPhase)
		}
	}
	if total.Resumes == 0 {
		t.Errorf("no recovery attempt ever resumed from the cursor")
	}
	if total.RedoneIntents == 0 {
		t.Errorf("no outer crash stranded an in-flight intent; the redo phase went unexercised")
	}
	if total.AckedMutations == 0 || total.InDoubtReplayed == 0 {
		t.Errorf("retry-stream evidence missing: acked %d, in-doubt %d", total.AckedMutations, total.InDoubtReplayed)
	}
	if got := reg.Counter("recovery_resumes_total").Value(); got != uint64(total.Resumes) {
		t.Errorf("recovery_resumes_total = %d, sweep counted %d", got, total.Resumes)
	}
	t.Logf("outer %d, inner %d (by depth %v, by phase %v), resumes %d, redone %d, acked %d",
		total.OuterCrashes, total.InnerCrashes, total.InnerByDepth, total.InnerByPhase,
		total.Resumes, total.RedoneIntents, total.AckedMutations)
}

// TestSweepNestedQuick is the always-on smoke: a small sweep that still
// cascades, on a shrunken recovery budget.
func TestSweepNestedQuick(t *testing.T) {
	cfg := NestedConfig{
		ServeConfig:  ServeConfig{Seed: 0xD15EA5E, Clients: 4, OpsPerClient: 12, MaxCrashPoints: 12},
		RecrashDepth: 2,
		BudgetScale:  0.5,
	}
	res, err := RunNested(cfg)
	if err != nil {
		t.Fatalf("RunNested: %v", err)
	}
	requireNestedClean(t, res, cfg.withDefaults())
	if res.OuterCrashes == 0 {
		t.Fatalf("quick nested sweep never crashed")
	}
	if res.InnerCrashes == 0 {
		t.Errorf("quick nested sweep never cascaded")
	}
}

// TestSweepNestedDeterministic re-runs a small sweep with the same seed
// and demands identical crash lattices and recovery evidence. Client
// goroutine interleaving varies, so ack-dependent counters may differ;
// the seeded machinery — stride, crash points, inner lattice, budget —
// must not.
func TestSweepNestedDeterministic(t *testing.T) {
	cfg := NestedConfig{
		ServeConfig:  ServeConfig{Seed: 0x0DDBA11, Clients: 4, OpsPerClient: 20, MaxCrashPoints: 8, Stride: 40},
		RecrashDepth: 2,
		BudgetScale:  0.5,
	}
	a, err := RunNested(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNested(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireNestedClean(t, a, cfg.withDefaults())
	requireNestedClean(t, b, cfg.withDefaults())
	if a.Stride != b.Stride || a.RecoveryBudget != b.RecoveryBudget || a.OuterCrashes != b.OuterCrashes {
		t.Errorf("seeded lattice diverged: (%d,%d,%d) vs (%d,%d,%d)",
			a.Stride, a.RecoveryBudget, a.OuterCrashes, b.Stride, b.RecoveryBudget, b.OuterCrashes)
	}
}

// TestSweepNestedSeedMatrix honours CRASHSWEEP_SEED so CI can fan the
// nested sweep across seeds.
func TestSweepNestedSeedMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("seed-matrix nested sweep is heavy; run without -short")
	}
	seed := uint64(0x5EED)
	if env := os.Getenv("CRASHSWEEP_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("CRASHSWEEP_SEED %q: %v", env, err)
		}
		seed = v
	}
	cfg := NestedConfig{
		ServeConfig:  ServeConfig{Seed: seed, MaxCrashPoints: 40},
		RecrashDepth: 3,
		BudgetScale:  0.5,
	}
	res, err := RunNested(cfg)
	if err != nil {
		t.Fatalf("RunNested(seed=%#x): %v", seed, err)
	}
	requireNestedClean(t, res, cfg.withDefaults())
	if res.OuterCrashes != 40 {
		t.Errorf("seed %#x: %d outer crashes, want 40", seed, res.OuterCrashes)
	}
	if res.InnerCrashes == 0 {
		t.Errorf("seed %#x: no cascaded re-crashes", seed)
	}
}
