// blackboxcrash.go closes the flight recorder's loop: the blackbox
// sweep is the live-traffic serve sweep (servecrash.go) with a
// budget-accounted black-box ring riding in every run, and three
// additional audits at every crash point:
//
//  1. the ring's pages sit INSIDE the dirty ≤ budget bound (the
//     recorder-dirty evidence counter witnesses they were dirty at
//     real crash instants, not incidentally clean);
//  2. the ring that survives the battery flush walks to a forensic
//     report matching the crash-instant oracle captured from the live
//     stack the moment before power failed — the adopted sequence
//     within one record of the recorder's last completed append, and
//     the report's dirty/budget/ladder verdicts equal to the
//     manager's own counters whenever the recorder shed nothing;
//  3. an identical un-crashed run with the recorder on completes
//     within a bounded goodput delta of one with it off — the price
//     of always-on crash forensics is measured, not assumed.
//
// The recorder is sealed at the crash instant (before the battery
// flush) and before any clean-shutdown drain: the flush's own
// bookkeeping — the dirty gauge collapsing, clean spans finishing —
// must not move the ring past the moment it is supposed to explain.
package crashsweep

import (
	"fmt"
	"math"

	"viyojit/internal/blackbox"
	"viyojit/internal/core"
)

// bbOracle is the crash-instant truth captured from the live stack
// immediately before the battery flush — what the recovered forensic
// report has to reproduce from ring bytes alone.
type bbOracle struct {
	dirty   int
	budget  int
	ladder  core.HealthState
	lastSeq uint64
	drops   uint32
}

// captureBlackBoxOracle snapshots the oracle and counts the
// recorder-pages-dirty evidence. Returns nil when the run carries no
// recorder. Must run before the recorder is sealed and before the
// flush.
func captureBlackBoxOracle(run *serveRun, res *ServeResult) *bbOracle {
	if run.rec == nil {
		return nil
	}
	if mappingDirtyAt(run, run.bbM) {
		res.RecorderDirtyCrashes++
	}
	return &bbOracle{
		dirty:   run.mgr.DirtyCount(),
		budget:  run.mgr.EffectiveDirtyBudget(),
		ladder:  run.mgr.HealthState(),
		lastSeq: run.rec.LastSeq(),
		drops:   run.rec.Dropped(),
	}
}

// auditBlackBoxWalk walks the post-flush ring and checks the forensic
// report against the oracle. A datum that aged out of the ring window
// (-1: its last gauge record was overwritten by newer traffic) is not
// comparable and is skipped; every datum still in the window must
// match exactly when the recorder shed nothing.
func auditBlackBoxWalk(run *serveRun, o *bbOracle, res *ServeResult, fail func(string, ...any)) *blackbox.WalkResult {
	if run.rec == nil || o == nil {
		return nil
	}
	w, err := blackbox.ReadAndWalk(run.bbM)
	if err != nil {
		fail("blackbox walk: %v", err)
		return nil
	}
	res.RecorderAppends += w.LastSeq
	res.RecorderDrops += uint64(o.drops)
	// The sequence bound: the ring can be at most one record behind the
	// recorder's last completed append (a crash landing inside the
	// append's own page fault tears at most the slot being written) and
	// can never be ahead of it.
	if w.LastSeq > o.lastSeq {
		fail("blackbox ring adopted seq %d beyond the recorder's last completed append %d", w.LastSeq, o.lastSeq)
	}
	if w.LastSeq+1 < o.lastSeq {
		fail("blackbox ring adopted seq %d; recorder completed %d — more than one record lost", w.LastSeq, o.lastSeq)
	}
	rep := blackbox.BuildReport(w)
	// Drops or not, the ring is a witness to the budget bound: no point
	// of the recorded dirty trajectory may exceed the crash-instant
	// effective budget (the sweep never retunes it, so the bound is
	// constant over the run).
	for _, p := range rep.Dirty {
		if p.Value > int64(o.budget) {
			fail("blackbox dirty trajectory records %d pages at t=%d, above budget %d", p.Value, p.At, o.budget)
			break
		}
	}
	if o.drops > 0 {
		res.ForensicDropped++
		return &w
	}
	exact := true
	check := func(name string, got, want int64) {
		if got == -1 {
			exact = false // aged out of the window: nothing to compare
			return
		}
		if got != want {
			exact = false
			fail("forensic %s = %d diverges from crash-instant oracle %d", name, got, want)
		}
	}
	check("dirty", rep.CrashDirty, int64(o.dirty))
	check("budget", rep.CrashBudget, int64(o.budget))
	check("ladder", rep.FinalLadder, int64(o.ladder))
	if exact {
		res.ForensicExact++
	}
	return &w
}

// attachRecovered continues the crash ring on a recovered stack: the
// walk is adopted (sequence stays monotone across the reboot), the
// recovery itself is recorded, and only then is the registry teed in —
// the recovered manager's boot bookkeeping must not overwrite
// crash-instant slots before the walk happened.
func attachRecovered(st *serveRun, w *blackbox.WalkResult) {
	if st.rec == nil {
		return
	}
	if w != nil {
		st.rec.Adopt(*w)
		st.rec.Append(blackbox.KindRecover, 0, int64(w.LastSeq), int64(w.Torn), 0, 0)
	}
	st.reg.SetSink(st.rec)
}

// BlackBoxResult is RunBlackBox's verdict: the crash sweep plus the
// healthy-run overhead measurement.
type BlackBoxResult struct {
	Serve ServeResult
	// HealthyOffNs / HealthyOnNs are the virtual completion times of an
	// identical un-crashed run without / with the recorder; the acked
	// counts confirm the two runs did the same work.
	HealthyOffNs    int64
	HealthyOnNs     int64
	HealthyOffAcked uint64
	HealthyOnAcked  uint64
	// GoodputDeltaFrac is |goodput(on) − goodput(off)| / goodput(off),
	// goodput being acked mutations per virtual second.
	GoodputDeltaFrac float64
	// HealthyRecorderAppends / Drops are the recorder-on run's ring
	// traffic — the denominator of the overhead per record.
	HealthyRecorderAppends uint64
	HealthyRecorderDrops   uint64
}

// healthyRun executes one un-crashed run to completion and returns its
// virtual elapsed time and acked-mutation count.
func healthyRun(cfg ServeConfig, keys [][]byte) (elapsedNs int64, acked uint64, appends, drops uint64, err error) {
	run, err := buildServe(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if err := run.srv.Start(); err != nil {
		return 0, 0, 0, 0, err
	}
	logs := driveClients(cfg, run.srv, keys)
	run.srv.Stop()
	for _, lg := range logs {
		if lg.err != nil {
			return 0, 0, 0, 0, fmt.Errorf("healthy run client: %w", lg.err)
		}
		if lg.inDoubt != nil {
			return 0, 0, 0, 0, fmt.Errorf("healthy run left client %d seq %d unacked", lg.id, lg.inDoubt.seq)
		}
		acked += uint64(len(lg.acked))
	}
	run.rec.Seal()
	run.mgr.FlushAll()
	if verr := run.mgr.VerifyDurability(); verr != nil {
		return 0, 0, 0, 0, fmt.Errorf("healthy run durability: %w", verr)
	}
	elapsedNs = int64(run.clock.Now())
	appends, drops = run.rec.LastSeq(), uint64(run.rec.Dropped())
	run.mgr.Close()
	return elapsedNs, acked, appends, drops, nil
}

// RunBlackBox executes the blackbox sweep: the full live-traffic crash
// sweep with a 2-page recorder in every run, then the recorder-on vs
// recorder-off healthy-overhead comparison.
func RunBlackBox(cfg ServeConfig) (BlackBoxResult, error) {
	if cfg.BlackBoxPages == 0 {
		cfg.BlackBoxPages = 2
	}
	var out BlackBoxResult
	sw, err := RunServe(cfg)
	out.Serve = sw
	if err != nil {
		return out, err
	}

	full := cfg.withDefaults()
	keys := makeKeys(full.Keys)
	offCfg := full
	offCfg.BlackBoxPages = 0
	out.HealthyOffNs, out.HealthyOffAcked, _, _, err = healthyRun(offCfg, keys)
	if err != nil {
		return out, err
	}
	out.HealthyOnNs, out.HealthyOnAcked, out.HealthyRecorderAppends, out.HealthyRecorderDrops, err = healthyRun(full, keys)
	if err != nil {
		return out, err
	}
	if out.HealthyOffNs > 0 && out.HealthyOnNs > 0 {
		gOff := float64(out.HealthyOffAcked) / float64(out.HealthyOffNs)
		gOn := float64(out.HealthyOnAcked) / float64(out.HealthyOnNs)
		out.GoodputDeltaFrac = math.Abs(gOn-gOff) / gOff
	}
	return out, nil
}
