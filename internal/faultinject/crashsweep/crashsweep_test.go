package crashsweep

import (
	"os"
	"strconv"
	"testing"

	"viyojit/internal/faultinject"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// TestSweepYCSBA is the acceptance sweep: ≥200 seeded crash points
// across a YCSB-A-style workload (zipf θ=0.99, 50/50 read/update), every
// durability invariant holding at every one.
func TestSweepYCSBA(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash-point sweep in -short mode")
	}
	cfg := Config{Seed: 0x5EED_A, MaxCrashPoints: 200}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	t.Logf("baseline events %d, stride %d, crash points %d (+%d ran past end), max dirty at crash %d, torn tails %d, rollbacks %d",
		res.BaselineEvents, res.Stride, res.CrashPoints, res.Completed,
		res.MaxDirtyAtCrash, res.TornTails, res.Rollbacks)
	if res.CrashPoints+res.Completed < 200 {
		t.Fatalf("swept %d points, want ≥ 200 (baseline only fired %d events)",
			res.CrashPoints+res.Completed, res.BaselineEvents)
	}
	if res.CrashPoints < 150 {
		t.Fatalf("only %d of %d points actually crashed mid-run", res.CrashPoints, cfg.MaxCrashPoints)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	budget := cfg.withDefaults().BudgetPages
	if res.MaxDirtyAtCrash > budget {
		t.Errorf("max dirty at crash %d exceeds budget %d", res.MaxDirtyAtCrash, budget)
	}
	if res.MaxDirtyAtCrash == 0 {
		t.Error("no crash point ever caught a dirty page; sweep is not exercising the flush path")
	}
}

// TestSweepWithSSDFaults re-runs a (smaller) sweep with transient,
// torn-write and latency-spike SSD faults injected during the workload:
// the degraded cleaning path, retries, and torn-tail recovery all run
// under crash fire.
func TestSweepWithSSDFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted crash-point sweep in -short mode")
	}
	cfg := Config{
		Seed:           0xFA17_5EED,
		MaxCrashPoints: 60,
		InjectFaults:   true,
		Faults: faultinject.Config{
			TransientProb: 0.05,
			TornProb:      0.02,
			SpikeProb:     0.05,
			MaxFaults:     64,
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("faulted sweep: %v", err)
	}
	t.Logf("baseline events %d, crash points %d (+%d ran past end), max dirty %d, torn tails %d, rollbacks %d",
		res.BaselineEvents, res.CrashPoints, res.Completed,
		res.MaxDirtyAtCrash, res.TornTails, res.Rollbacks)
	if res.CrashPoints == 0 {
		t.Fatal("faulted sweep produced no crash points")
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestSweepBatterySag is the online-re-provisioning acceptance sweep: a
// battery provisioned for the full budget sags to 50 % mid-workload, the
// safe-shrink hook drains the dirty set to the halved coverage before
// the energy drops, and every one of ≥200 crash points — including ones
// landing mid-drain — satisfies dirty ≤ pages coverable by the battery's
// effective joules at the crash instant, with the flush charged against
// that live energy. The slow SSD makes page transfer dominate the flush
// energy, so the 50 % sag translates into a real budget shrink (24 → 8
// pages) rather than vanishing into the fixed-overhead reserve.
func TestSweepBatterySag(t *testing.T) {
	if testing.Short() {
		t.Skip("sag crash-point sweep in -short mode")
	}
	cfg := Config{
		Seed:           0xBA77_5A6,
		MaxCrashPoints: 200,
		SagFraction:    0.5,
		SSD:            ssd.Config{WriteBandwidth: 16 << 20},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sag sweep: %v", err)
	}
	t.Logf("baseline events %d, stride %d, crash points %d (+%d ran past end), max dirty %d, mid-drain crashes %d, sagged crashes %d",
		res.BaselineEvents, res.Stride, res.CrashPoints, res.Completed,
		res.MaxDirtyAtCrash, res.MidDrainCrashes, res.SaggedCrashes)
	if res.CrashPoints+res.Completed < 200 {
		t.Fatalf("swept %d points, want ≥ 200", res.CrashPoints+res.Completed)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.SaggedCrashes == 0 {
		t.Error("no crash point landed after the sag; sweep never tested the shrunken battery")
	}
	if res.MidDrainCrashes == 0 {
		t.Error("no crash point landed mid-drain; sweep never tested the transition window")
	}
}

// TestSweepCorruption is the silent-corruption acceptance sweep: ≥200
// seeded crash points with lost/misdirected/rot faults injected and the
// background scrubber in the loop. The bar is zero silent escapes — no
// corrupt page is ever restored or reported durable without detection —
// and the sweep must actually inject corruption and exercise the
// detection machinery, or the guarantee is vacuous.
func TestSweepCorruption(t *testing.T) {
	if testing.Short() {
		t.Skip("corruption crash-point sweep in -short mode")
	}
	cfg := Config{Seed: 0xC0_44_0B7, MaxCrashPoints: 200, Corruption: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("corruption sweep: %v", err)
	}
	t.Logf("baseline events %d, stride %d, crash points %d (+%d ran past end), corruptions %d, scrub detections %d, scrub repairs %d, restore quarantines %d, reported losses %d, silent escapes %d",
		res.BaselineEvents, res.Stride, res.CrashPoints, res.Completed,
		res.CorruptionsInjected, res.ScrubDetections, res.ScrubRepairs,
		res.RestoreQuarantines, res.ReportedLosses, res.SilentEscapes)
	if res.CrashPoints+res.Completed < 200 {
		t.Fatalf("swept %d points, want ≥ 200", res.CrashPoints+res.Completed)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.SilentEscapes != 0 {
		t.Errorf("%d silent escapes; the detection guarantee is broken", res.SilentEscapes)
	}
	if res.CorruptionsInjected == 0 {
		t.Error("no corruption ever injected; sweep is vacuous")
	}
	if res.ScrubDetections+uint64(res.RestoreQuarantines) == 0 {
		t.Error("injected corruption but nothing was ever detected — detectors never ran")
	}
	budget := cfg.withDefaults().BudgetPages
	if res.MaxDirtyAtCrash > budget {
		t.Errorf("max dirty at crash %d exceeds budget %d (scrub repairs must stay inside the budget)", res.MaxDirtyAtCrash, budget)
	}
}

// TestSweepCorruptionDeterministic: corruption mode must replay exactly
// from the seed too — injected faults, scrub schedule, and verdicts all
// included.
func TestSweepCorruptionDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, Ops: 200, MaxCrashPoints: 10, Corruption: true}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.BaselineEvents != b.BaselineEvents || a.CrashPoints != b.CrashPoints ||
		a.CorruptionsInjected != b.CorruptionsInjected ||
		a.ScrubDetections != b.ScrubDetections || a.ScrubRepairs != b.ScrubRepairs ||
		a.RestoreQuarantines != b.RestoreQuarantines ||
		a.SilentEscapes != b.SilentEscapes || len(a.Violations) != len(b.Violations) {
		t.Fatalf("corruption sweep not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
}

// TestSweepSeedMatrix is the CI matrix entry point: setting
// CRASHSWEEP_SEED runs a moderate sweep — plain and sagging — under that
// seed, so each matrix job covers a different crash-point lattice.
func TestSweepSeedMatrix(t *testing.T) {
	env := os.Getenv("CRASHSWEEP_SEED")
	if env == "" {
		t.Skip("CRASHSWEEP_SEED not set (CI matrix dimension)")
	}
	seed, err := strconv.ParseUint(env, 0, 64)
	if err != nil {
		t.Fatalf("CRASHSWEEP_SEED %q: %v", env, err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Seed: seed, MaxCrashPoints: 60}},
		{"sag", Config{Seed: seed, MaxCrashPoints: 60, SagFraction: 0.5, SSD: ssd.Config{WriteBandwidth: 16 << 20}}},
		{"corruption", Config{Seed: seed, MaxCrashPoints: 60, Corruption: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.cfg)
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			if res.CrashPoints == 0 {
				t.Fatal("no crash points")
			}
			for _, v := range res.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestSweepDeterministic: the same seed must produce the identical sweep
// — crash points, torn-tail count, rollbacks, and max dirty all equal.
func TestSweepDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Ops: 200, MaxCrashPoints: 12}
	a, err := Run(cfg)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.BaselineEvents != b.BaselineEvents || a.CrashPoints != b.CrashPoints ||
		a.TornTails != b.TornTails || a.Rollbacks != b.Rollbacks ||
		a.MaxDirtyAtCrash != b.MaxDirtyAtCrash || len(a.Violations) != len(b.Violations) {
		t.Fatalf("sweep not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
}

// TestSweepHardwareAssist sweeps the §5.4 MMU-offload manager too: the
// durability invariant is mode-independent.
func TestSweepHardwareAssist(t *testing.T) {
	cfg := Config{Seed: 7, Ops: 250, MaxCrashPoints: 25, HardwareAssist: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.CrashPoints == 0 {
		t.Fatal("no crash points")
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}

// TestSweepExplicitStride pins the stride instead of deriving it.
func TestSweepExplicitStride(t *testing.T) {
	cfg := Config{Seed: 3, Ops: 150, Stride: 11, MaxCrashPoints: 10, Epoch: 500 * sim.Microsecond}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Stride != 11 {
		t.Fatalf("stride %d, want 11", res.Stride)
	}
	if res.CrashPoints == 0 {
		t.Fatal("no crash points")
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
}
