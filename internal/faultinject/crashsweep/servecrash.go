// servecrash.go is the live-traffic crash sweep: where crashsweep.go
// power-fails a single-goroutine workload, RunServe power-fails a real
// serve.Server mid-flight while concurrent RetryingClients drive a
// YCSB-A-style mix through the exactly-once intent-journal protocol, and
// then proves end-to-end that
//
//  1. dirty ≤ effective budget at the crash instant — with the intent
//     journal's pages inside the bound, since the journal lives in an
//     ordinary budget-accounted mapping;
//  2. the battery flush completes within provisioned energy and leaves
//     the SSD byte-equal to NV-DRAM;
//  3. a recovered stack (fresh region restored from the SSD, reopened
//     heap, store, and journal, fresh server) answers every client's
//     retry stream exactly once: every acknowledged mutation is present
//     (zero lost acks), no mutation is applied twice (per-key count/sum
//     oracle), and the one in-flight-at-crash op per client lands
//     cleanly on replay — deduped, redone from the journaled image, or
//     freshly applied, whichever crash window it died in;
//  4. the journal Open rebuilds exactly the table a read-only walk of
//     the committed record prefix implies (intent.RebuildTable).
//
// Unlike the single-goroutine sweeps, a serve run is NOT bit-replayable
// from its seed: the event step a crash lands on is deterministic, but
// which client's request occupies that step depends on goroutine
// scheduling. Every invariant above is therefore checked against the
// run's own acknowledgement log — an oracle the sweep builds as the run
// happens — rather than against a re-executed shadow run.
//
// Crash containment is split: a power failure firing inside the dispatch
// loop is recovered by serve.Config.RecoverCrash (clients observe
// ErrPowerFailure); one firing during the post-Stop drain on the sweep
// goroutine is caught by Crasher.Run. Either way the Crasher records the
// crash point and the same post-failure protocol runs.
//
// Why replay is safe over a store with no transactional atomicity: the
// dispatch loop is serial, so at most ONE kvstore mutation is mid-flight
// when power fails — the in-doubt request the sweep replays. An in-place
// value update torn mid-copy is overwritten by the replay's redo image;
// a torn insert is unreachable (the chain-head pointer flip is the last,
// page-atomic write) and the replay allocates a fresh entry. Every other
// acknowledged mutation finished before the crash and is covered by page
// durability alone.
package crashsweep

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"viyojit/internal/blackbox"
	"viyojit/internal/core"
	"viyojit/internal/dist"
	"viyojit/internal/faultinject"
	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/obs"
	"viyojit/internal/pheap"
	"viyojit/internal/power"
	"viyojit/internal/recovery"
	"viyojit/internal/serve"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// ServeConfig parameterises a live-traffic sweep. Zero values select a
// small configuration that still forces cleans, journal compactions, and
// client retries under crash fire.
type ServeConfig struct {
	// Seed drives key selection, value mixing, and backoff jitter. Crash
	// *points* replay from it; goroutine interleavings do not (see the
	// package comment on servecrash.go).
	Seed uint64
	// Clients is the number of concurrent RetryingClients; 0 selects 10.
	Clients int
	// OpsPerClient is each client's operation count; 0 selects 40.
	OpsPerClient int
	// Keys is the key-space size; 0 selects 48.
	Keys int
	// ReadFraction is the read share of each client's mix; 0 selects 0.5
	// (YCSB-A). Reads flow outside the idempotence protocol.
	ReadFraction float64
	// ZipfTheta is the key-popularity skew; 0 selects 0.99.
	ZipfTheta float64
	// HeapPages sizes the store mapping; 0 selects 64.
	HeapPages int
	// JournalPages sizes the intent-journal mapping; 0 selects 16.
	JournalPages int
	// BudgetPages is the dirty budget; 0 selects 8 — tight enough that
	// journal appends and store writes force synchronous cleans under
	// load. Note the budget alone barely opens the
	// intent-begun-but-not-completed window to the Crasher: forced
	// cleans on the fault path are synchronous and fire no queue
	// events; only a fault on a page whose asynchronous clean is still
	// in flight steps the queue mid-op, and whether that ever happens
	// is seed- and layout-dependent. Set CommitMarkers to open the
	// window deterministically.
	BudgetPages int
	// CommitMarkers plants serve-side crash points inside each
	// idempotent op's Begin→Complete critical section
	// (serve.Config.CrashPoints): one queue-event strike instant after
	// the intent record is durable and one after the mutation applies.
	// Without them, whether any crash strands an in-flight intent for
	// recovery's redo phase is left to the incidental
	// in-flight-clean-wait path. The nested sweep sets this; the plain
	// sweep's historical lattice leaves it off.
	CommitMarkers bool
	// Window is the journal's per-client dedup window; 0 selects the
	// journal default.
	Window int
	// CursorPages sizes the persistent recovery-cursor mapping; 0 maps
	// no cursor (the plain single-crash sweep). The nested sweep sets 1.
	CursorPages int
	// BlackBoxPages sizes the flight-recorder ring mapping; 0 runs
	// without a recorder. When set, every run carries a budget-accounted
	// black-box ring, the obs registry tees into it, and every crash
	// additionally audits the recovered forensic report against the
	// crash-instant oracle (see blackboxcrash.go). The blackbox sweep
	// sets 2.
	BlackBoxPages int
	// MaxCrashPoints is the number of crash points to inject; 0 selects
	// 200. The sweep re-wraps the step space (same steps, different
	// interleavings) until it has actually crashed that many runs.
	MaxCrashPoints int
	// Stride crashes at every Stride-th event step; 0 derives one from
	// the baseline run.
	Stride uint64
	// SSD overrides the backing-device configuration.
	SSD ssd.Config
	// Epoch overrides the manager's scan period (0 = 1 ms).
	Epoch sim.Duration
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Clients == 0 {
		c.Clients = 10
	}
	if c.OpsPerClient == 0 {
		c.OpsPerClient = 40
	}
	if c.Keys == 0 {
		c.Keys = 48
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	}
	if c.ZipfTheta == 0 {
		c.ZipfTheta = dist.ZipfianConstant
	}
	if c.HeapPages == 0 {
		c.HeapPages = 64
	}
	if c.JournalPages == 0 {
		c.JournalPages = 16
	}
	if c.BudgetPages == 0 {
		c.BudgetPages = 8
	}
	if c.MaxCrashPoints == 0 {
		c.MaxCrashPoints = 200
	}
	return c
}

// ServeResult summarises a live-traffic sweep. The evidence counters
// exist so acceptance tests can prove the sweep exercised each recovery
// path, not just that nothing failed.
type ServeResult struct {
	// BaselineEvents is the event count of the un-crashed calibration
	// run; Stride is the derived crash-point spacing over it.
	BaselineEvents uint64
	Stride         uint64
	// CrashPoints counts runs that actually power-failed mid-traffic;
	// Completed counts armed runs whose step was never reached (those
	// verified a clean shutdown instead).
	CrashPoints int
	Completed   int
	// Violations lists every broken invariant; empty means exactly-once
	// held at every crash point.
	Violations []Violation
	// MaxDirtyAtCrash is the largest dirty set seen at any crash instant
	// (≤ budget unless a violation was recorded).
	MaxDirtyAtCrash int
	// JournalDirtyCrashes counts crash instants at which at least one
	// intent-journal page was dirty — direct evidence the journal's
	// pages ride inside the audited budget rather than beside it.
	JournalDirtyCrashes int
	// AckedMutations totals mutations acknowledged before their run's
	// crash; every one must survive recovery.
	AckedMutations uint64
	// ClientRetries totals transport-level retries clients issued while
	// their server was alive.
	ClientRetries uint64
	// InDoubtReplayed counts in-flight-at-crash ops retried against the
	// recovered server; the journal answers each retry from the result
	// cache (Deduped) or, if the op never reached the journal, executes
	// it freshly (Fresh). ReplayRedone counts intents the recovery-time
	// serve.ReplayPending pass resolved from their journaled redo images
	// — those ops' retries then dedup like any completed op.
	InDoubtReplayed int
	ReplayDeduped   int
	ReplayRedone    int
	ReplayFresh     int
	// AckedRetryDedups counts retries of already-acknowledged mutations
	// that the recovered journal absorbed without re-execution.
	AckedRetryDedups int
	// TornOpens counts recovered journals whose active half ended in a
	// torn record — the crash-mid-append signature, detected and dropped.
	TornOpens int
	// JournalBytes is the journal record traffic across crashed runs;
	// MutationBytes is the acked mutations' key+value payload — the
	// write-amplification ratio EXPERIMENTS.md reports.
	JournalBytes  uint64
	MutationBytes uint64
	// RecorderDirtyCrashes counts crash instants at which at least one
	// flight-recorder ring page was dirty — direct evidence the ring
	// rides inside the audited dirty budget rather than beside it.
	// Zero unless BlackBoxPages > 0.
	RecorderDirtyCrashes int
	// ForensicExact counts crashed runs whose recovered forensic report
	// named the crash-instant dirty level, effective budget, and ladder
	// state exactly; ForensicDropped counts crashed runs where recorder
	// drops (shed appends) relaxed the audit to the sequence bound
	// alone. Every crashed run with a recorder lands in exactly one.
	ForensicExact   int
	ForensicDropped int
	// RecorderAppends and RecorderDrops total successful ring appends
	// and shed appends across crashed runs.
	RecorderAppends uint64
	RecorderDrops   uint64
}

// serveRun is one freshly built serving stack.
type serveRun struct {
	cfg     ServeConfig
	clock   *sim.Clock
	events  *sim.Queue
	region  *nvdram.Region
	dev     *ssd.SSD
	mgr     *core.Manager
	heapM   *core.Mapping
	jM      *core.Mapping
	curM    *core.Mapping    // nil unless CursorPages > 0
	cursor  *recovery.Cursor // nil unless CursorPages > 0
	store   *kvstore.Store
	journal *intent.Journal
	srv     *serve.Server
	reg     *obs.Registry      // nil unless BlackBoxPages > 0
	bbM     *core.Mapping      // nil unless BlackBoxPages > 0
	rec     *blackbox.Recorder // nil unless BlackBoxPages > 0
}

// valBytes is the oracle value layout: [count u64][sum u64]. count is
// how many RMW mutations ever applied to the key; sum accumulates each
// mutation's unique token, so the pair identifies the applied multiset
// exactly — one lost ack breaks the sum, one double-apply breaks the
// count (a re-applied redo IMAGE changes neither, which is the point).
const valBytes = 16

func mutToken(client, seq uint64) uint64 { return client<<32 | seq }

func decodeOracle(v []byte) (count, sum uint64) {
	if len(v) != valBytes {
		return 0, 0
	}
	return binary.LittleEndian.Uint64(v), binary.LittleEndian.Uint64(v[8:])
}

func mutOp(key []byte, token uint64) serve.IdemOp {
	return serve.IdemOp{
		Kind: serve.IdemRMW,
		Key:  key,
		Tag:  token,
		Modify: func(old []byte, ok bool) []byte {
			var c, s uint64
			if ok {
				c, s = decodeOracle(old)
			}
			out := make([]byte, valBytes)
			binary.LittleEndian.PutUint64(out, c+1)
			binary.LittleEndian.PutUint64(out[8:], s+token)
			return out
		},
	}
}

func buildServe(cfg ServeConfig) (*serveRun, error) {
	st := &serveRun{cfg: cfg}
	st.clock = sim.NewClock()
	st.events = sim.NewQueue()
	regionPages := cfg.HeapPages + cfg.JournalPages + cfg.CursorPages + cfg.BlackBoxPages
	var err error
	st.region, err = nvdram.New(st.clock, nvdram.Config{Size: int64(regionPages) * pageSize})
	if err != nil {
		return nil, err
	}
	st.dev = ssd.New(st.clock, st.events, cfg.SSD)
	if cfg.BlackBoxPages > 0 {
		st.reg = obs.NewRegistry()
	}
	st.mgr, err = core.NewManager(st.clock, st.events, st.region, st.dev, core.Config{
		DirtyBudgetPages: cfg.BudgetPages,
		Epoch:            cfg.Epoch,
		Obs:              st.reg,
	})
	if err != nil {
		return nil, err
	}
	// Mapping order is the recovery contract: recoverServe re-Maps the
	// same names and sizes in the same order, and the first-fit
	// allocator hands back the same extents. The black box maps FIRST so
	// its ring sits at the same offset every boot.
	if cfg.BlackBoxPages > 0 {
		if st.bbM, err = st.mgr.Map("__blackbox", int64(cfg.BlackBoxPages)*pageSize); err != nil {
			return nil, err
		}
		if st.rec, err = blackbox.New(st.bbM, blackbox.Options{Now: st.clock.Now, Gate: st.bbM.TelemetryWritable}); err != nil {
			return nil, err
		}
		st.reg.SetSink(st.rec)
		st.rec.Boot(int64(cfg.BudgetPages))
	}
	if st.heapM, err = st.mgr.Map("heap", int64(cfg.HeapPages)*pageSize); err != nil {
		return nil, err
	}
	if st.jM, err = st.mgr.Map("intent", int64(cfg.JournalPages)*pageSize); err != nil {
		return nil, err
	}
	if cfg.CursorPages > 0 {
		if st.curM, err = st.mgr.Map("cursor", int64(cfg.CursorPages)*pageSize); err != nil {
			return nil, err
		}
		if st.cursor, err = recovery.CreateCursor(st.curM, nil); err != nil {
			return nil, err
		}
	}
	heap, err := pheap.Format(st.heapM)
	if err != nil {
		return nil, err
	}
	if st.store, err = kvstore.Create(heap, 64); err != nil {
		return nil, err
	}
	if st.journal, err = intent.Create(st.jM, intent.Config{Window: cfg.Window}); err != nil {
		return nil, err
	}
	st.srv, err = serve.New(st.clock, st.events, st.mgr, st.store, serve.Config{
		Journal:      st.journal,
		RecoverCrash: func(v any) bool { _, ok := faultinject.AsCrash(v); return ok },
		CrashPoints:  cfg.CommitMarkers,
	})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// recoverServe rebuilds a live stack over a region restored from old's
// SSD: the warm reboot the retry streams replay against.
func recoverServe(cfg ServeConfig, old *serveRun) (*serveRun, error) {
	st := &serveRun{cfg: cfg}
	st.clock = sim.NewClock()
	st.events = sim.NewQueue()
	var err error
	st.region, err = nvdram.New(st.clock, nvdram.Config{Size: old.region.Size()})
	if err != nil {
		return nil, err
	}
	st.dev = ssd.New(st.clock, st.events, cfg.SSD)
	for _, page := range old.dev.DurablePageList() {
		data, ok := old.dev.Durable(page)
		if !ok {
			continue
		}
		st.dev.SeedDurable(page, data)
		if err := st.region.RestorePage(page, st.dev.ReadPage(page)); err != nil {
			return nil, err
		}
	}
	if cfg.BlackBoxPages > 0 {
		st.reg = obs.NewRegistry()
	}
	st.mgr, err = core.NewManager(st.clock, st.events, st.region, st.dev, core.Config{
		DirtyBudgetPages: cfg.BudgetPages,
		Epoch:            cfg.Epoch,
		Obs:              st.reg,
	})
	if err != nil {
		return nil, err
	}
	// The black-box mapping is re-Mapped first (recovery contract) and a
	// fresh recorder armed over the restored ring — but the registry is
	// NOT teed into it yet: the manager's own boot bookkeeping must not
	// overwrite crash-instant slots before the caller walks the ring.
	// The caller adopts the walk and attaches the sink (attachRecovered).
	if cfg.BlackBoxPages > 0 {
		if st.bbM, err = st.mgr.Map("__blackbox", int64(cfg.BlackBoxPages)*pageSize); err != nil {
			return nil, err
		}
		if st.rec, err = blackbox.New(st.bbM, blackbox.Options{Now: st.clock.Now, Gate: st.bbM.TelemetryWritable}); err != nil {
			return nil, err
		}
	}
	if st.heapM, err = st.mgr.Map("heap", int64(cfg.HeapPages)*pageSize); err != nil {
		return nil, err
	}
	if st.jM, err = st.mgr.Map("intent", int64(cfg.JournalPages)*pageSize); err != nil {
		return nil, err
	}
	if cfg.CursorPages > 0 {
		if st.curM, err = st.mgr.Map("cursor", int64(cfg.CursorPages)*pageSize); err != nil {
			return nil, err
		}
		if st.cursor, err = recovery.OpenCursor(st.curM, nil); err != nil {
			return nil, err
		}
	}
	heap, err := pheap.Open(st.heapM)
	if err != nil {
		return nil, fmt.Errorf("reopening heap: %w", err)
	}
	if st.store, err = kvstore.Open(heap); err != nil {
		return nil, fmt.Errorf("reopening store: %w", err)
	}
	if st.journal, err = intent.Open(st.jM, nil); err != nil {
		return nil, fmt.Errorf("reopening journal: %w", err)
	}
	st.srv, err = serve.New(st.clock, st.events, st.mgr, st.store, serve.Config{Journal: st.journal})
	if err != nil {
		return nil, err
	}
	return st, nil
}

// mutation is one idempotent op a client issued: enough to replay it
// byte-identically and to predict its oracle contribution.
type mutation struct {
	seq   uint64
	key   int
	token uint64
}

// clientLog is one client's acknowledgement record, written only by its
// own goroutine and read after the WaitGroup join.
type clientLog struct {
	id       uint64
	acked    []mutation // acks received before the crash, in seq order
	inDoubt  *mutation  // issued, never acked: the op in flight at crash
	retries  uint64
	err      error // a non-power-failure client error (always a violation)
	seedBase uint64
}

// driveClients runs cfg.Clients concurrent RetryingClients against srv
// until they finish their ops or the server power-fails under them.
func driveClients(cfg ServeConfig, srv *serve.Server, keys [][]byte) []*clientLog {
	logs := make([]*clientLog, cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		lg := &clientLog{id: uint64(i + 1), seedBase: cfg.Seed ^ uint64(i+1)*0x9E3779B97F4A7C15}
		logs[i] = lg
		wg.Add(1)
		go func() {
			defer wg.Done()
			driveClient(cfg, srv, keys, lg)
		}()
	}
	wg.Wait()
	return logs
}

func serverGone(err error) bool {
	return errors.Is(err, serve.ErrPowerFailure) || errors.Is(err, serve.ErrServerClosed)
}

func driveClient(cfg ServeConfig, srv *serve.Server, keys [][]byte, lg *clientLog) {
	cl, err := serve.NewRetryingClient(srv, lg.id, lg.seedBase, serve.RetryConfig{Priority: serve.PriorityNormal})
	if err != nil {
		lg.err = err
		return
	}
	defer func() { lg.retries = cl.Retries() }()
	rng := sim.NewRNG(lg.seedBase ^ 0xC11E)
	zipf := dist.NewZipfian(rng.Fork(), int64(cfg.Keys), cfg.ZipfTheta)
	opRNG := rng.Fork()
	ctx := context.Background()
	for op := 0; op < cfg.OpsPerClient; op++ {
		k := int(zipf.Next())
		if opRNG.Float64() < cfg.ReadFraction {
			_, rerr := srv.Submit(ctx, serve.Request{Priority: serve.PriorityNormal, Op: readOp(keys[k])})
			if serverGone(rerr) {
				return
			}
			continue // a shed read carries no durability obligation
		}
		seq := cl.NextSeq()
		m := mutation{seq: seq, key: k, token: mutToken(lg.id, seq)}
		lg.inDoubt = &m
		_, _, derr := cl.Do(ctx, mutOp(keys[k], m.token))
		if derr == nil {
			lg.acked = append(lg.acked, m)
			lg.inDoubt = nil
			continue
		}
		if serverGone(derr) {
			return // the in-doubt op stays recorded for replay
		}
		lg.err = fmt.Errorf("client %d seq %d: %w", lg.id, seq, derr)
		return
	}
}

func readOp(key []byte) func(serve.Exec) (any, error) {
	return func(e serve.Exec) (any, error) {
		_, _, err := e.Store.Get(key)
		return nil, err
	}
}

// makeKeys builds the shared key set; values stay in one 64-byte heap
// class so every update is in-place.
func makeKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%02d", i))
	}
	return keys
}

// oracleExpect folds every op that must have applied exactly once into
// the per-key (count, sum) the recovered store has to show.
func oracleExpect(logs []*clientLog, replayed []mutation) map[int][2]uint64 {
	want := make(map[int][2]uint64)
	add := func(m mutation) {
		cs := want[m.key]
		cs[0]++
		cs[1] += m.token
		want[m.key] = cs
	}
	for _, lg := range logs {
		for _, m := range lg.acked {
			add(m)
		}
	}
	for _, m := range replayed {
		add(m)
	}
	return want
}

// checkOracle compares the store against the expected multiset.
func checkOracle(store *kvstore.Store, keys [][]byte, want map[int][2]uint64, fail func(string, ...any)) {
	for k, key := range keys {
		v, ok, err := store.Get(key)
		if err != nil {
			fail("key %s: read failed: %v", key, err)
			continue
		}
		exp, expected := want[k]
		if !expected {
			if ok {
				fail("key %s: present with no acknowledged mutation (phantom apply)", key)
			}
			continue
		}
		if !ok {
			fail("key %s: missing; %d acknowledged mutations lost", key, exp[0])
			continue
		}
		count, sum := decodeOracle(v)
		switch {
		case count < exp[0] || (count == exp[0] && sum != exp[1]):
			fail("key %s: lost ack (count %d sum %#x, want count %d sum %#x)", key, count, sum, exp[0], exp[1])
		case count > exp[0]:
			fail("key %s: double apply (count %d, want %d)", key, count, exp[0])
		}
	}
}

// compareTables checks the journal Open's incremental table against the
// read-only record walk: same clients, same windows, same entries.
func compareTables(opened, walked map[uint64]intent.ClientSnapshot, fail func(string, ...any)) {
	if len(opened) != len(walked) {
		fail("dedup table: Open found %d clients, record walk found %d", len(opened), len(walked))
		return
	}
	for client, a := range opened {
		b, ok := walked[client]
		if !ok {
			fail("dedup table: client %d missing from record walk", client)
			continue
		}
		if a.Low != b.Low || a.MaxSeq != b.MaxSeq {
			fail("dedup table: client %d window [%d,%d] vs walk [%d,%d]", client, a.Low, a.MaxSeq, b.Low, b.MaxSeq)
			continue
		}
		if len(a.Entries) != len(b.Entries) {
			fail("dedup table: client %d has %d entries vs walk %d", client, len(a.Entries), len(b.Entries))
			continue
		}
		for seq, ea := range a.Entries {
			eb, ok := b.Entries[seq]
			if !ok {
				fail("dedup table: client %d seq %d missing from walk", client, seq)
				continue
			}
			if ea.OpSum != eb.OpSum || ea.Done != eb.Done || ea.Code != eb.Code || ea.Tombstone != eb.Tombstone {
				fail("dedup table: client %d seq %d diverges (opsum %#x/%#x done %v/%v)",
					client, seq, ea.OpSum, eb.OpSum, ea.Done, eb.Done)
			}
		}
	}
}

// mappingDirtyAt reports whether any page of the mapping diverges from
// its durable copy — i.e. was dirty at the crash instant. Called before
// the battery flush.
func mappingDirtyAt(st *serveRun, mp *core.Mapping) bool {
	lo := mp.Base() / pageSize
	hi := (mp.Base() + mp.Size() - 1) / pageSize
	for p := lo; p <= hi; p++ {
		page := mmu.PageID(p)
		live := st.region.RawPage(page)
		durable, ok := st.dev.Durable(page)
		if !ok {
			for _, b := range live {
				if b != 0 {
					return true
				}
			}
			continue
		}
		if !bytes.Equal(live, durable) {
			return true
		}
	}
	return false
}

// runServePoint executes one armed run: serve, crash (or complete),
// flush, recover, replay, verify.
func runServePoint(cfg ServeConfig, step uint64, keys [][]byte, res *ServeResult) error {
	run, err := buildServe(cfg)
	if err != nil {
		return err
	}
	crasher := faultinject.NewCrasher(run.events)
	crasher.ArmAt(step)
	if err := run.srv.Start(); err != nil {
		return err
	}
	var logs []*clientLog
	// A crash inside the dispatch loop is contained by RecoverCrash; one
	// firing during the post-Stop drain lands here and Run catches it.
	crasher.Run(func() {
		logs = driveClients(cfg, run.srv, keys)
		run.srv.Stop()
		if _, crashed := crasher.Crashed(); !crashed {
			// Clean shutdown: the recorder stops before the drain, or the
			// dirty gauge falling per clean would tee appends that
			// re-dirty ring pages under the drain loop. Nil-safe.
			run.rec.Seal()
			run.mgr.FlushAll()
		}
	})
	cp, crashed := crasher.Crashed()
	crasher.Disarm()

	var out []Violation
	fail := func(format string, args ...any) {
		out = append(out, Violation{Step: cp.Step, Msg: fmt.Sprintf(format, args...)})
	}
	for _, lg := range logs {
		if lg.err != nil {
			fail("client error: %v", lg.err)
		}
		res.AckedMutations += uint64(len(lg.acked))
		res.ClientRetries += lg.retries
		for _, m := range lg.acked {
			res.MutationBytes += uint64(len(keys[m.key]) + valBytes)
		}
	}

	if !crashed {
		// Armed step past this run's end: verify the clean shutdown. No
		// client may hold an in-doubt op — the server never failed.
		for _, lg := range logs {
			if lg.inDoubt != nil {
				fail("clean run left client %d seq %d unacknowledged", lg.id, lg.inDoubt.seq)
			}
		}
		if err := run.mgr.VerifyDurability(); err != nil {
			fail("clean-run durability: %v", err)
		}
		checkOracle(run.store, keys, oracleExpect(logs, nil), fail)
		run.mgr.Close()
		res.Completed++
		res.Violations = append(res.Violations, out...)
		return nil
	}
	res.CrashPoints++

	// (1) The budget bound at the crash instant, journal and recorder
	// pages included.
	dirty, budget := run.mgr.DirtyCount(), run.mgr.EffectiveDirtyBudget()
	if dirty > res.MaxDirtyAtCrash {
		res.MaxDirtyAtCrash = dirty
	}
	if dirty > budget {
		fail("dirty count %d exceeds effective budget %d at crash", dirty, budget)
	}
	if mappingDirtyAt(run, run.jM) {
		res.JournalDirtyCrashes++
	}
	// Capture the crash-instant oracle from the live (about-to-die)
	// stack, then seal the recorder so the flush's own bookkeeping
	// cannot move the ring past the crash instant.
	oracle := captureBlackBoxOracle(run, res)
	run.rec.Seal()

	// (2) Battery flush within the energy provisioned for the budget.
	pm := power.Default()
	report := run.mgr.PowerFail(pm, flushEnergy(Config{BudgetPages: cfg.BudgetPages}, run.dev, pm, run.region.Size()))
	if !report.Survived {
		fail("flush of %d pages used %.3f J of %.3f J provisioned",
			report.DirtyAtFailure, report.EnergyUsedJoules, report.EnergyAvailableJoules)
	}
	if err := run.mgr.VerifyDurability(); err != nil {
		fail("durability: %v", err)
	}
	res.JournalBytes += run.journal.Stats().AppendBytes

	// (2b) Walk the post-flush ring and audit the forensic report
	// against the oracle captured the instant before the flush.
	bbWalk := auditBlackBoxWalk(run, oracle, res, fail)

	// (3) Recover a live stack and check the rebuilt dedup table against
	// the committed record prefix before any new traffic touches it.
	rec, err := recoverServe(cfg, run)
	if err != nil {
		fail("recovery: %v", err)
		res.Violations = append(res.Violations, out...)
		return nil
	}
	attachRecovered(rec, bbWalk)
	if rec.journal.TornOpen() {
		res.TornOpens++
	}
	walked, walkTorn, err := intent.RebuildTable(rec.jM)
	if err != nil {
		fail("record walk: %v", err)
	} else {
		if walkTorn != rec.journal.TornOpen() {
			fail("torn-tail verdicts diverge: Open %v, record walk %v", rec.journal.TornOpen(), walkTorn)
		}
		compareTables(rec.journal.Snapshot(), walked, fail)
	}

	// Resolve in-flight intents BEFORE serving resumes — a redo image is
	// only sound against pre-crash state (see serve.ReplayPending). A
	// serial dispatch loop can leave at most one.
	redone, err := serve.ReplayPending(rec.store, rec.journal)
	if err != nil {
		fail("recovery redo: %v", err)
	}
	if redone > 1 {
		fail("recovery found %d in-flight intents; a serial server can leave at most one", redone)
	}
	res.ReplayRedone += redone

	// (4) Replay every client's retry stream: the in-doubt op must land
	// exactly once, and a retried already-acked op must be absorbed.
	tally, err := replayRetryStreams(rec, logs, keys, fail)
	if err != nil {
		return err
	}
	res.InDoubtReplayed += tally.inDoubt
	res.ReplayDeduped += tally.deduped
	res.ReplayFresh += tally.fresh
	res.AckedRetryDedups += tally.ackedDedups
	res.MutationBytes += tally.mutationBytes

	// (5) The oracle: recovered store == every acked-or-replayed
	// mutation applied exactly once.
	checkOracle(rec.store, keys, oracleExpect(logs, tally.replayed), fail)
	rec.mgr.Close()
	res.Violations = append(res.Violations, out...)
	return nil
}

// replayTally is what one recovered server's retry-stream replay
// produced — the shared verdict of the single-crash and nested sweeps.
type replayTally struct {
	inDoubt       int
	deduped       int
	fresh         int
	ackedDedups   int
	mutationBytes uint64
	replayed      []mutation
}

// replayRetryStreams drives every client's post-crash retry protocol
// against a recovered server: the in-doubt op must land exactly once
// (deduped from the result cache or freshly applied — never a
// retry-time redo, since recovery-time ReplayPending ran first), and a
// retried already-acked op must be absorbed without re-execution. The
// server is started and stopped here.
func replayRetryStreams(rec *serveRun, logs []*clientLog, keys [][]byte, fail func(string, ...any)) (replayTally, error) {
	var tally replayTally
	if err := rec.srv.Start(); err != nil {
		return tally, err
	}
	ctx := context.Background()
	for _, lg := range logs {
		cl, cerr := serve.NewRetryingClient(rec.srv, lg.id, lg.seedBase^0x5EC0D, serve.RetryConfig{Priority: serve.PriorityNormal})
		if cerr != nil {
			fail("replay client %d: %v", lg.id, cerr)
			continue
		}
		if m := lg.inDoubt; m != nil {
			r, rerr := cl.DoSeq(ctx, m.seq, mutOp(keys[m.key], m.token))
			if rerr != nil {
				fail("client %d: in-doubt seq %d failed on replay: %v", lg.id, m.seq, rerr)
			} else {
				tally.inDoubt++
				tally.replayed = append(tally.replayed, *m)
				tally.mutationBytes += uint64(len(keys[m.key]) + valBytes)
				switch {
				case r.Deduped:
					tally.deduped++
				case r.Redone:
					// ReplayPending ran first, so the retry-time redo
					// fallback must never fire.
					fail("client %d: in-doubt seq %d hit retry-time redo after recovery replay", lg.id, m.seq)
				default:
					tally.fresh++
				}
			}
		}
		if n := len(lg.acked); n > 0 {
			// Retry the last pre-crash acked op: the recovered journal
			// must answer it without executing again (a fresh apply here
			// IS a double apply, caught both ways).
			m := lg.acked[n-1]
			r, rerr := cl.DoSeq(ctx, m.seq, mutOp(keys[m.key], m.token))
			switch {
			case rerr != nil:
				fail("client %d: retry of acked seq %d failed: %v", lg.id, m.seq, rerr)
			case !r.Deduped && !r.Redone:
				fail("client %d: retry of acked seq %d re-executed fresh (double apply)", lg.id, m.seq)
			default:
				tally.ackedDedups++
			}
		}
	}
	rec.srv.Stop()
	return tally, nil
}

// RunServe executes the live-traffic sweep: one un-crashed calibration
// run sizes the step space, then fresh serving runs crash at swept
// steps. The step lattice wraps until MaxCrashPoints runs have actually
// crashed — revisiting a step is productive here, since each run's
// goroutine interleaving is its own.
func RunServe(cfg ServeConfig) (ServeResult, error) {
	cfg = cfg.withDefaults()
	var res ServeResult
	keys := makeKeys(cfg.Keys)

	base, err := buildServe(cfg)
	if err != nil {
		return res, err
	}
	if err := base.srv.Start(); err != nil {
		return res, err
	}
	logs := driveClients(cfg, base.srv, keys)
	base.srv.Stop()
	res.BaselineEvents = base.events.Fired()
	for _, lg := range logs {
		if lg.err != nil {
			return res, fmt.Errorf("crashsweep: baseline client: %w", lg.err)
		}
		if lg.inDoubt != nil {
			return res, fmt.Errorf("crashsweep: baseline left client %d seq %d unacked", lg.id, lg.inDoubt.seq)
		}
	}
	base.rec.Seal() // nil-safe; see the clean-shutdown seal in runServePoint
	base.mgr.FlushAll()
	if n := base.mgr.DirtyCount(); n != 0 {
		return res, fmt.Errorf("crashsweep: baseline left %d dirty pages after flush", n)
	}
	base.mgr.Close()
	if res.BaselineEvents == 0 {
		return res, fmt.Errorf("crashsweep: baseline fired no events")
	}

	stride := cfg.Stride
	if stride == 0 {
		stride = res.BaselineEvents / uint64(cfg.MaxCrashPoints)
		if stride == 0 {
			stride = 1
		}
	}
	res.Stride = stride

	// Safety bound: completed (never-crashed) runs consume an attempt
	// without advancing CrashPoints, so cap total attempts.
	maxAttempts := 4 * cfg.MaxCrashPoints
	for i := 1; res.CrashPoints < cfg.MaxCrashPoints && i <= maxAttempts; i++ {
		step := uint64(i) * stride
		if step > res.BaselineEvents {
			// Wrap, offset by the pass number so later passes interleave
			// the earlier lattice.
			pass := step / res.BaselineEvents
			step = step%res.BaselineEvents + pass
			if step == 0 {
				step = 1
			}
		}
		if err := runServePoint(cfg, step, keys, &res); err != nil {
			return res, fmt.Errorf("crashsweep: serve run armed at step %d: %w", step, err)
		}
	}
	return res, nil
}
