package mondrian

import (
	"bytes"
	"testing"
	"testing/quick"

	"viyojit/internal/power"
	"viyojit/internal/sim"
)

func newTestTracker(t testing.TB, cfg Config) (*Tracker, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	if cfg.Size == 0 {
		cfg.Size = 1 << 20
	}
	if cfg.BudgetBytes == 0 {
		cfg.BudgetBytes = 64 << 10
	}
	tr, err := New(clock, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, clock
}

func TestNewValidation(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	bad := []Config{
		{Size: 0, BudgetBytes: 1024},
		{Size: 1000, SectorSize: 256, BudgetBytes: 1024}, // unaligned
		{Size: 1 << 20, BudgetBytes: 0},
		{Size: 1 << 20, SectorSize: -1, BudgetBytes: 1024},
	}
	for _, cfg := range bad {
		if _, err := New(clock, events, cfg); err == nil {
			t.Errorf("New(%+v) succeeded", cfg)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr, _ := newTestTracker(t, Config{})
	data := []byte("byte-granularity durability")
	if err := tr.WriteAt(data, 1000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := tr.ReadAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
}

func TestBoundsChecked(t *testing.T) {
	tr, _ := newTestTracker(t, Config{Size: 4096, BudgetBytes: 1024})
	if err := tr.WriteAt([]byte{1}, 4096); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if err := tr.ReadAt(make([]byte, 2), 4095); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
}

func TestDirtyBytesTrackSectorsNotPages(t *testing.T) {
	tr, _ := newTestTracker(t, Config{SectorSize: 256})
	// A 16-byte write dirties exactly one 256 B sector — not a 4 KiB
	// page. This is the §7 battery-utilisation win.
	if err := tr.WriteAt(make([]byte, 16), 0); err != nil {
		t.Fatal(err)
	}
	if tr.DirtyBytes() != 256 {
		t.Fatalf("dirty bytes = %d, want 256", tr.DirtyBytes())
	}
	// A write spanning a sector boundary dirties two.
	if err := tr.WriteAt(make([]byte, 16), 512-8); err != nil {
		t.Fatal(err)
	}
	if tr.DirtyBytes() != 3*256 {
		t.Fatalf("dirty bytes = %d, want 768", tr.DirtyBytes())
	}
}

func TestBudgetEnforced(t *testing.T) {
	tr, _ := newTestTracker(t, Config{SectorSize: 256, BudgetBytes: 4 * 256})
	for i := 0; i < 64; i++ {
		if err := tr.WriteAt([]byte{byte(i + 1)}, int64(i)*256); err != nil {
			t.Fatal(err)
		}
		tr.Pump()
		if tr.DirtySectors() > 4 {
			t.Fatalf("dirty sectors %d exceed budget 4", tr.DirtySectors())
		}
	}
	if tr.Stats().ForcedCleans == 0 && tr.Stats().ProactiveCleans == 0 {
		t.Fatal("no cleaning despite exceeding the budget")
	}
}

func TestProactiveCleaningUnderPressure(t *testing.T) {
	tr, clock := newTestTracker(t, Config{SectorSize: 256, BudgetBytes: 64 * 256})
	sector := 0
	for e := 0; e < 12; e++ {
		for i := 0; i < 8; i++ {
			if err := tr.WriteAt([]byte{1}, int64(sector%4096)*256); err != nil {
				t.Fatal(err)
			}
			sector++
		}
		clock.Advance(sim.Millisecond)
		tr.Pump()
	}
	// Let the last epoch's in-flight cleans complete before checking.
	clock.Advance(sim.Millisecond)
	tr.Pump()
	if tr.Stats().ProactiveCleans == 0 {
		t.Fatal("no proactive cleaning under sustained dirtying")
	}
	if tr.DirtySectors() >= 64 {
		t.Fatal("no slack maintained below the budget")
	}
}

func TestVictimIsColdSector(t *testing.T) {
	tr, clock := newTestTracker(t, Config{SectorSize: 256, BudgetBytes: 3 * 256})
	// Sectors 0 (cold), 1, 2 (hot).
	for _, s := range []int64{0, 1, 2} {
		if err := tr.WriteAt([]byte{byte(s + 1)}, s*256); err != nil {
			t.Fatal(err)
		}
	}
	for e := 0; e < 5; e++ {
		clock.Advance(sim.Millisecond)
		tr.Pump()
		if err := tr.WriteAt([]byte{9}, 1*256); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteAt([]byte{9}, 2*256); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.WriteAt([]byte{7}, 3*256); err != nil { // forces eviction
		t.Fatal(err)
	}
	if _, still := tr.dirty[0]; still {
		t.Fatal("cold sector not evicted")
	}
	for _, hot := range []SectorID{1, 2} {
		if _, ok := tr.dirty[hot]; !ok {
			t.Fatalf("hot sector %d evicted", hot)
		}
	}
}

func TestFlushAllAndVerify(t *testing.T) {
	tr, _ := newTestTracker(t, Config{})
	for i := 0; i < 100; i++ {
		if err := tr.WriteAt([]byte{byte(i + 1)}, int64(i)*300); err != nil {
			t.Fatal(err)
		}
		tr.Pump()
	}
	tr.FlushAll()
	if tr.DirtySectors() != 0 {
		t.Fatalf("dirty after FlushAll = %d", tr.DirtySectors())
	}
	if err := tr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close() // idempotent
}

func TestPowerFailDurability(t *testing.T) {
	tr, _ := newTestTracker(t, Config{SectorSize: 256, BudgetBytes: 32 * 256})
	for i := 0; i < 200; i++ {
		if err := tr.WriteAt([]byte{byte(i | 1)}, int64(i)*256); err != nil {
			t.Fatal(err)
		}
		tr.Pump()
	}
	pm := power.Default()
	// Energy for the budget's bytes plus fixed overhead.
	watts := pm.FlushWatts(tr.Size())
	seconds := float64(tr.BudgetBytes())/float64(tr.SSD().Config().WriteBandwidth) + 0.001
	report := tr.PowerFail(pm, watts*seconds)
	if !report.Survived {
		t.Fatalf("flush did not survive: %+v", report)
	}
	if err := tr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
}

func TestBatteryBytesAdvantageOverPages(t *testing.T) {
	// The §7 claim, quantified: under small scattered writes, the bytes
	// a byte-granularity battery must cover are far below the page-
	// granularity equivalent (sectors dirtied × 4 KiB).
	tr, _ := newTestTracker(t, Config{SectorSize: 256, BudgetBytes: 1 << 20, Size: 4 << 20})
	rng := sim.NewRNG(3)
	const writes = 500
	pages := map[int64]struct{}{}
	for i := 0; i < writes; i++ {
		off := rng.Int63n(tr.Size() - 64)
		if err := tr.WriteAt(make([]byte, 64), off); err != nil {
			t.Fatal(err)
		}
		pages[off/4096] = struct{}{}
		tr.Pump()
	}
	pageBytes := int64(len(pages)) * 4096
	if tr.DirtyBytes()*4 > pageBytes {
		t.Fatalf("byte-granularity dirty bytes %d not ≪ page-granularity %d", tr.DirtyBytes(), pageBytes)
	}
}

// Property: budget invariant + durability after flush for arbitrary
// write sequences.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		clock := sim.NewClock()
		events := sim.NewQueue()
		tr, err := New(clock, events, Config{Size: 64 << 10, SectorSize: 256, BudgetBytes: 8 * 256})
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		shadow := make([]byte, 64<<10)
		for i := 0; i < int(nOps)%150+1; i++ {
			off := rng.Int63n(int64(len(shadow)) - 32)
			buf := make([]byte, rng.Intn(32)+1)
			for j := range buf {
				buf[j] = byte(rng.Uint64())
			}
			if tr.WriteAt(buf, off) != nil {
				return false
			}
			copy(shadow[off:], buf)
			tr.Pump()
			if tr.DirtySectors() > 8 {
				return false
			}
			if rng.Intn(4) == 0 {
				clock.Advance(sim.Millisecond)
				tr.Pump()
			}
		}
		got := make([]byte, len(shadow))
		if tr.ReadAt(got, 0) != nil || !bytes.Equal(got, shadow) {
			return false
		}
		tr.FlushAll()
		return tr.VerifyDurability() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
