// Package mondrian implements the finer-granularity variant §7 of the
// paper sketches: dirty tracking and budgeting at sub-page (sector)
// granularity, as Mondrian Memory Protection would enable. The same
// dirty-budgeting mechanism applies — a budget derived from the battery,
// strict enforcement on the write path, epoch-based recency, proactive
// cleaning — but the tracked unit is a sector (default 256 B), so
//
//   - the battery budget is consumed by the bytes actually written, not
//     whole pages ("better utilization of provisioned battery capacity"),
//     and
//   - only dirty sectors are copied out, cutting SSD write traffic for
//     small-write workloads ("reduce the write traffic to secondary
//     storage").
//
// The backing device is an SSD formatted with sector-sized LBAs (real
// NVMe devices support 512 B sectors; the model allows any size).
package mondrian

import (
	"bytes"
	"fmt"

	"viyojit/internal/core"
	"viyojit/internal/mmu"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// SectorID identifies one tracked sector.
type SectorID = mmu.PageID

// Config parameterises a byte-granularity tracker.
type Config struct {
	// Size is the NV-DRAM region size in bytes (positive multiple of
	// SectorSize).
	Size int64
	// SectorSize is the tracking granularity; 0 selects 256.
	SectorSize int
	// BudgetBytes bounds the dirty bytes (rounded down to sectors).
	BudgetBytes int64
	// Epoch is the recency-scan period; 0 selects 1 ms.
	Epoch sim.Duration
	// EWMAWeight as in core.Config; 0 selects 0.75.
	EWMAWeight float64
	// Policy orders victims; nil selects core.LRUUpdate.
	Policy core.VictimPolicy
	// TrapCost is charged on the first write to a clean sector (the
	// Mondrian hardware's fine-grained fault); 0 selects 1 µs — cheaper
	// than a page fault, as fine-grained protection hardware would be.
	TrapCost sim.Duration
	// SSD overrides the device model; its PageSize is forced to
	// SectorSize.
	SSD ssd.Config
}

// Stats counts tracker activity.
type Stats struct {
	Writes           uint64
	SectorsDirtied   uint64
	ForcedCleans     uint64
	ProactiveCleans  uint64
	CleansCompleted  uint64
	CleanErrors      uint64
	Epochs           uint64
	MaxDirtyObserved int
}

// Tracker is the byte-granularity dirty-budget manager. Like the
// page-granularity manager it is single-goroutine.
type Tracker struct {
	clock  *sim.Clock
	events *sim.Queue
	cfg    Config
	dev    *ssd.SSD

	data       []byte
	sectorSize int
	budget     int // sectors

	dirty      map[SectorID]*dirtySector
	dirtySeq   uint64
	history    []uint64
	histEpoch  []uint64
	epochIndex uint64

	updatedThisEpoch  map[SectorID]struct{}
	newDirtyThisEpoch int
	pressure          float64
	victimQueue       []core.PageInfo
	victimPos         int
	epochEvent        *sim.Event
	closed            bool

	stats Stats
}

type dirtySector struct {
	seq      uint64
	cleaning bool
}

// New builds a tracker with its own sector-LBA SSD on the shared clock
// and event queue.
func New(clock *sim.Clock, events *sim.Queue, cfg Config) (*Tracker, error) {
	if cfg.SectorSize == 0 {
		cfg.SectorSize = 256
	}
	if cfg.SectorSize <= 0 {
		return nil, fmt.Errorf("mondrian: sector size %d must be positive", cfg.SectorSize)
	}
	if cfg.Size <= 0 || cfg.Size%int64(cfg.SectorSize) != 0 {
		return nil, fmt.Errorf("mondrian: size %d must be a positive multiple of sector size %d", cfg.Size, cfg.SectorSize)
	}
	budget := int(cfg.BudgetBytes / int64(cfg.SectorSize))
	if budget < 1 {
		return nil, fmt.Errorf("mondrian: budget %d bytes below one sector (%d)", cfg.BudgetBytes, cfg.SectorSize)
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = sim.Millisecond
	}
	if cfg.EWMAWeight == 0 {
		cfg.EWMAWeight = 0.75
	}
	if cfg.Policy == nil {
		cfg.Policy = core.LRUUpdate{}
	}
	if cfg.TrapCost == 0 {
		cfg.TrapCost = sim.Microsecond
	}
	devCfg := cfg.SSD
	devCfg.PageSize = cfg.SectorSize
	nSectors := int(cfg.Size / int64(cfg.SectorSize))
	t := &Tracker{
		clock:            clock,
		events:           events,
		cfg:              cfg,
		dev:              ssd.New(clock, events, devCfg),
		data:             make([]byte, cfg.Size),
		sectorSize:       cfg.SectorSize,
		budget:           budget,
		dirty:            make(map[SectorID]*dirtySector),
		history:          make([]uint64, nSectors),
		histEpoch:        make([]uint64, nSectors),
		updatedThisEpoch: make(map[SectorID]struct{}),
	}
	t.scheduleEpoch(clock.Now().Add(cfg.Epoch))
	return t, nil
}

// Size returns the region size in bytes.
func (t *Tracker) Size() int64 { return int64(len(t.data)) }

// SectorSize returns the tracking granularity.
func (t *Tracker) SectorSize() int { return t.sectorSize }

// DirtyBytes returns the bytes currently not durable.
func (t *Tracker) DirtyBytes() int64 { return int64(len(t.dirty)) * int64(t.sectorSize) }

// DirtySectors returns the dirty-set size in sectors.
func (t *Tracker) DirtySectors() int { return len(t.dirty) }

// BudgetBytes returns the budget in bytes.
func (t *Tracker) BudgetBytes() int64 { return int64(t.budget) * int64(t.sectorSize) }

// Stats returns a snapshot of the counters.
func (t *Tracker) Stats() Stats { return t.stats }

// SSD exposes the backing device (for traffic accounting).
func (t *Tracker) SSD() *ssd.SSD { return t.dev }

// Pump delivers due events.
func (t *Tracker) Pump() { t.events.RunUntil(t.clock, t.clock.Now()) }

func (t *Tracker) scheduleEpoch(at sim.Time) {
	t.epochEvent = t.events.Schedule(at, t.epochTick)
}

func (t *Tracker) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > int64(len(t.data)) {
		return fmt.Errorf("mondrian: range [%d,%d) outside region of %d bytes", off, off+int64(n), len(t.data))
	}
	return nil
}

// WriteAt stores p at offset off, tracking dirtiness per sector. The
// first write to a clean sector pays the fine-grained trap; if the dirty
// set is at the budget a victim sector is cleaned synchronously first.
// The signature satisfies pheap.Store, so the persistent heap and KV
// store run unchanged on byte-granularity tracking.
func (t *Tracker) WriteAt(p []byte, off int64) error {
	if err := t.checkRange(off, len(p)); err != nil {
		return err
	}
	t.stats.Writes++
	first := SectorID(off / int64(t.sectorSize))
	last := SectorID((off + int64(len(p)) - 1) / int64(t.sectorSize))
	cur := off
	remaining := p
	for s := first; s <= last; s++ {
		if ds, ok := t.dirty[s]; ok && ds.cleaning {
			// Wait for the in-flight copy of this sector, as the
			// page-granularity fault handler does; afterwards the sector
			// is clean and is RE-ADMITTED below, so the incoming bytes
			// stay tracked.
			for {
				if now, still := t.dirty[s]; !still || now != ds {
					break
				}
				if !t.events.Step(t.clock) {
					panic("mondrian: waiting on in-flight clean with no events")
				}
			}
		}
		if _, tracked := t.dirty[s]; !tracked {
			// Admit a newly dirty sector.
			t.clock.Advance(t.cfg.TrapCost)
			for len(t.dirty) >= t.budget {
				t.stats.ForcedCleans++
				if !t.cleanOneSync() {
					panic(fmt.Sprintf("mondrian: dirty %d at budget %d with no victim", len(t.dirty), t.budget))
				}
			}
			t.dirtySeq++
			t.dirty[s] = &dirtySector{seq: t.dirtySeq}
			t.ageHistory(s)
			t.newDirtyThisEpoch++
			t.stats.SectorsDirtied++
			if len(t.dirty) > t.stats.MaxDirtyObserved {
				t.stats.MaxDirtyObserved = len(t.dirty)
			}
		}
		t.touch(s)
		// Copy this sector's chunk NOW, before the next sector's
		// admission can trigger a clean that would otherwise snapshot
		// this sector with stale contents.
		sectorEnd := (int64(s) + 1) * int64(t.sectorSize)
		n := int(sectorEnd - cur)
		if n > len(remaining) {
			n = len(remaining)
		}
		copy(t.data[cur:], remaining[:n])
		cur += int64(n)
		remaining = remaining[n:]
	}
	// DRAM copy cost, same scale as nvdram (≈10 GB/s).
	t.clock.Advance(sim.Duration(len(p)) / 10)
	if len(t.dirty) > t.budget {
		panic(fmt.Sprintf("mondrian: INVARIANT VIOLATED: %d dirty sectors > budget %d", len(t.dirty), t.budget))
	}
	return nil
}

// ReadAt fills p from offset off.
func (t *Tracker) ReadAt(p []byte, off int64) error {
	if err := t.checkRange(off, len(p)); err != nil {
		return err
	}
	copy(p, t.data[off:])
	t.clock.Advance(sim.Duration(len(p))/10 + 80*sim.Nanosecond)
	return nil
}

// touch records an update for recency tracking. Mondrian hardware keeps
// fine-grained dirty state, so the tracker observes every update epoch
// directly (no TLB staleness at this granularity).
func (t *Tracker) touch(s SectorID) {
	t.updatedThisEpoch[s] = struct{}{}
}

func (t *Tracker) ageHistory(s SectorID) {
	delta := t.epochIndex - t.histEpoch[s]
	if delta >= 64 {
		t.history[s] = 0
	} else {
		t.history[s] >>= delta
	}
	t.histEpoch[s] = t.epochIndex
}

func (t *Tracker) rebuildVictimQueue() {
	t.victimQueue = t.victimQueue[:0]
	for s, ds := range t.dirty {
		if ds.cleaning {
			continue
		}
		t.victimQueue = append(t.victimQueue, core.PageInfo{Page: s, History: t.history[s], DirtiedSeq: ds.seq})
	}
	t.cfg.Policy.Order(t.victimQueue)
	t.victimPos = 0
}

func (t *Tracker) nextVictim() (SectorID, bool) {
	for pass := 0; pass < 2; pass++ {
		for t.victimPos < len(t.victimQueue) {
			cand := t.victimQueue[t.victimPos]
			t.victimPos++
			if ds, ok := t.dirty[cand.Page]; ok && !ds.cleaning && ds.seq == cand.DirtiedSeq {
				return cand.Page, true
			}
		}
		t.rebuildVictimQueue()
	}
	return 0, false
}

func (t *Tracker) startClean(s SectorID) {
	ds := t.dirty[s]
	ds.cleaning = true
	start := int64(s) * int64(t.sectorSize)
	buf := make([]byte, t.sectorSize)
	copy(buf, t.data[start:])
	t.dev.WritePageAsync(s, buf, func(_ sim.Time, err error) {
		if err != nil {
			// The sector's latest contents are not durable: keep it dirty
			// and cleanable so the forced/epoch paths re-pick it.
			t.stats.CleanErrors++
			if cur, ok := t.dirty[s]; ok && cur == ds {
				ds.cleaning = false
			}
			return
		}
		t.stats.CleansCompleted++
		if cur, ok := t.dirty[s]; ok && cur == ds {
			delete(t.dirty, s)
		}
	})
}

func (t *Tracker) cleanOneSync() bool {
	before := len(t.dirty)
	started := false
	for len(t.dirty) >= before {
		if !started || t.inflight() == 0 {
			if s, ok := t.nextVictim(); ok {
				t.startClean(s)
				started = true
			} else if t.inflight() == 0 {
				return false
			}
		}
		if !t.events.Step(t.clock) {
			panic("mondrian: blocked on clean with no events")
		}
	}
	return true
}

func (t *Tracker) inflight() int {
	n := 0
	for _, ds := range t.dirty {
		if ds.cleaning {
			n++
		}
	}
	return n
}

func (t *Tracker) epochTick(at sim.Time) {
	if t.closed {
		return
	}
	t.stats.Epochs++
	t.epochIndex++
	for s := range t.dirty {
		t.ageHistory(s)
	}
	for s := range t.updatedThisEpoch {
		if _, ok := t.dirty[s]; ok {
			t.history[s] |= 1 << 63
		}
		delete(t.updatedThisEpoch, s)
	}
	w := t.cfg.EWMAWeight
	t.pressure = w*float64(t.newDirtyThisEpoch) + (1-w)*t.pressure
	t.newDirtyThisEpoch = 0

	threshold := t.budget - int(t.pressure+0.5)
	if threshold < 0 {
		threshold = 0
	}
	t.rebuildVictimQueue()
	target := len(t.dirty) - t.inflight()
	for target > threshold {
		s, ok := t.nextVictim()
		if !ok {
			break
		}
		t.stats.ProactiveCleans++
		t.startClean(s)
		target--
	}
	t.scheduleEpoch(at.Add(t.cfg.Epoch))
}

// FlushAll synchronously cleans every dirty sector.
func (t *Tracker) FlushAll() {
	for len(t.dirty) > 0 {
		started := false
		for s, ds := range t.dirty {
			if !ds.cleaning {
				t.startClean(s)
				started = true
			}
		}
		if !t.events.Step(t.clock) && !started {
			panic("mondrian: FlushAll blocked with no events")
		}
	}
}

// PowerFail flushes the dirty sectors as a streaming backup and reports
// energy use against availableJoules.
func (t *Tracker) PowerFail(pm power.Model, availableJoules float64) core.PowerFailReport {
	report := core.PowerFailReport{
		DirtyAtFailure:        len(t.dirty),
		EnergyAvailableJoules: availableJoules,
	}
	t.events.Cancel(t.epochEvent)
	t.closed = true
	start := t.clock.Now()
	t.dev.WaitIdle()
	batch := make(map[SectorID][]byte, len(t.dirty))
	for s := range t.dirty {
		off := int64(s) * int64(t.sectorSize)
		batch[s] = t.data[off : off+int64(t.sectorSize)]
	}
	t.dev.WriteBatch(batch)
	for s := range t.dirty {
		delete(t.dirty, s)
	}
	report.PagesFlushed = report.DirtyAtFailure
	report.FlushTime = t.clock.Now().Sub(start)
	report.EnergyUsedJoules = pm.FlushWatts(t.Size()) * report.FlushTime.Seconds()
	report.Survived = report.EnergyUsedJoules <= availableJoules
	return report
}

// VerifyDurability checks that every sector is either durable with
// identical contents or never written (zero).
func (t *Tracker) VerifyDurability() error {
	nSectors := len(t.data) / t.sectorSize
	for i := 0; i < nSectors; i++ {
		s := SectorID(i)
		off := int64(i) * int64(t.sectorSize)
		live := t.data[off : off+int64(t.sectorSize)]
		durable, ok := t.dev.Durable(s)
		if ok {
			if !bytes.Equal(live, durable) {
				return fmt.Errorf("mondrian: sector %d diverges from durable copy", s)
			}
			continue
		}
		for _, b := range live {
			if b != 0 {
				return fmt.Errorf("mondrian: sector %d has data but no durable copy", s)
			}
		}
	}
	return nil
}

// Close stops the epoch task and drains IO.
func (t *Tracker) Close() {
	if t.closed {
		return
	}
	t.closed = true
	t.events.Cancel(t.epochEvent)
	t.dev.WaitIdle()
}
