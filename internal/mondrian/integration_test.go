package mondrian

import (
	"fmt"
	"testing"

	"viyojit/internal/kvstore"
	"viyojit/internal/pheap"
	"viyojit/internal/power"
	"viyojit/internal/sim"
)

// The tracker satisfies pheap.Store, so the full application stack —
// persistent heap and Redis-like KV store — runs unchanged on
// byte-granularity dirty budgeting.
var _ pheap.Store = (*Tracker)(nil)

func TestKVStoreOnByteGranularity(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	tr, err := New(clock, events, Config{
		Size:        8 << 20,
		BudgetBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(tr)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.Create(heap, 512)
	if err != nil {
		t.Fatal(err)
	}

	const records = 800
	for i := 0; i < records; i++ {
		if err := store.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("value-%05d-payload", i))); err != nil {
			t.Fatal(err)
		}
		tr.Pump()
	}
	// Update a hot subset repeatedly.
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			if err := store.Put([]byte(fmt.Sprintf("key%05d", i)), []byte(fmt.Sprintf("hot-%d-%05d", round, i))); err != nil {
				t.Fatal(err)
			}
			tr.Pump()
		}
		clock.Advance(sim.Millisecond)
		tr.Pump()
	}

	// Small records dirty far fewer bytes than page granularity would:
	// the §7 point, now under a real application.
	if tr.Stats().MaxDirtyObserved > int(tr.BudgetBytes())/tr.SectorSize() {
		t.Fatalf("budget violated: %d sectors", tr.Stats().MaxDirtyObserved)
	}

	// Power failure: everything recoverable.
	pm := power.Default()
	watts := pm.FlushWatts(tr.Size())
	seconds := float64(tr.BudgetBytes())/float64(tr.SSD().Config().WriteBandwidth) + 0.002
	report := tr.PowerFail(pm, watts*seconds)
	if !report.Survived {
		t.Fatalf("flush did not survive: %+v", report)
	}
	if err := tr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}

	// The heap reopens over the surviving bytes and every record reads
	// back with its latest value.
	heap2, err := pheap.Open(tr)
	if err != nil {
		t.Fatal(err)
	}
	store2, err := kvstore.Open(heap2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < records; i++ {
		key := []byte(fmt.Sprintf("key%05d", i))
		want := fmt.Sprintf("value-%05d-payload", i)
		if i < 50 {
			want = fmt.Sprintf("hot-4-%05d", i)
		}
		got, ok, err := store2.Get(key)
		if err != nil || !ok {
			t.Fatalf("record %d lost (ok=%v err=%v)", i, ok, err)
		}
		if string(got) != want {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
}
