// fsvolume: the paper's §3 scenario — a file-system volume hosted
// entirely in NV-DRAM. The example generates a synthetic data-center
// volume trace (skewed writes, like the Microsoft traces the paper
// analyses), replays it against a Viyojit-managed region, and reports how
// small a battery sufficed: the dirty budget versus the data actually
// written.
//
// Run with:
//
//	go run ./examples/fsvolume
package main

import (
	"fmt"
	"log"

	"viyojit"
	"viyojit/internal/trace"
)

func main() {
	// A 64 MiB volume with trace-like skew: ~12 % of it written in the
	// worst hour, 99 % of writes to ~10 % of pages (the paper's
	// category-3 volumes, e.g. Cosmos F).
	spec := trace.VolumeSpec{
		Name:                   "vol-A",
		SizeBytes:              64 << 20,
		WorstHourWriteFraction: 0.12,
		Skew:                   trace.SkewHot,
		HotFraction:            0.10,
		TouchedFraction:        0.6,
	}
	vol, err := trace.Generate(spec, 2*trace.Hour, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d events over 2h for a %d MiB volume (%d write events)\n",
		len(vol.Events), spec.SizeBytes>>20, vol.WriteEvents())
	fmt.Printf("worst-hour data written: %.1f%% of the volume\n",
		vol.WorstIntervalWrittenFraction(trace.Hour)*100)

	// Host the volume in NV-DRAM with a battery covering ~12.5 %.
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: spec.SizeBytes})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sys.Map(spec.Name, spec.SizeBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dirty budget: %d pages (%.1f%% of the volume)\n",
		sys.DirtyBudget(), float64(sys.DirtyBudget())*4096*100/float64(spec.SizeBytes))

	// Replay: writes land on the traced pages; reads just probe. Idle
	// gaps between events are compressed to at most maxIdle so the
	// 2-hour trace replays quickly while background epochs still run
	// between events.
	const maxIdle = viyojit.Duration(2_000_000) // 2 ms
	buf := make([]byte, 4096)
	maxDirty := 0
	var prevAt int64
	for i, e := range vol.Events {
		if gap := viyojit.Duration(int64(e.At) - prevAt); gap > 0 {
			if gap > maxIdle {
				gap = maxIdle
			}
			sys.AdvanceTime(gap)
		}
		prevAt = int64(e.At)
		off := e.Page * 4096
		if e.Write {
			n := e.Bytes
			if n > len(buf) {
				n = len(buf)
			}
			buf[0] = byte(i)
			if err := m.WriteAt(buf[:n], off); err != nil {
				log.Fatal(err)
			}
		} else {
			if err := m.ReadAt(buf[:64], off); err != nil {
				log.Fatal(err)
			}
		}
		sys.Pump()
		if d := sys.DirtyCount(); d > maxDirty {
			maxDirty = d
		}
	}

	st := sys.Stats()
	fmt.Printf("replay done at t=%v\n", sys.Now())
	fmt.Printf("  peak dirty: %d pages of budget %d\n", maxDirty, sys.DirtyBudget())
	fmt.Printf("  faults: %d, proactive cleans: %d, forced cleans: %d\n",
		st.Faults, st.ProactiveCleans, st.ForcedCleans)

	report := sys.SimulatePowerFailure()
	fmt.Printf("power failure: flushed %d pages in %v, survived=%v\n",
		report.PagesFlushed, report.FlushTime, report.Survived)
	if err := sys.VerifyDurability(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("volume contents fully durable with a fraction of the full battery")
}
