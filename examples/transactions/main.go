// transactions: persistent transactional memory on Viyojit NV-DRAM —
// the third application class the paper's introduction motivates
// (NV-Heaps, Mnemosyne, NVML). An inventory table is updated with atomic
// multi-field transactions; one transaction is deliberately "killed"
// half-way (a crash), and the reopened heap shows it never happened —
// while every committed transaction survives a real power failure.
//
// Run with:
//
//	go run ./examples/transactions
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"viyojit"
	"viyojit/internal/ptx"
)

const (
	logPartition = 64 << 10
	items        = 32
)

func slot(item int) int64 { return int64(item) * 8 }

func get(tx *ptx.Tx, item int) uint64 {
	var b [8]byte
	if err := tx.Read(b[:], slot(item)); err != nil {
		log.Fatal(err)
	}
	return binary.LittleEndian.Uint64(b[:])
}

func put(tx *ptx.Tx, item int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return tx.Write(b[:], slot(item))
}

func main() {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sys.Map("inventory", 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	h, err := ptx.Create(m, logPartition)
	if err != nil {
		log.Fatal(err)
	}

	// Seed stock levels atomically.
	if err := h.Update(func(tx *ptx.Tx) error {
		for i := 0; i < items; i++ {
			if err := put(tx, i, 100); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("seeded 32 items at stock 100 (one atomic transaction)")

	// Move stock between warehouses in committed transactions.
	for i := 0; i < 200; i++ {
		from, to := i%items, (i*7+3)%items
		if from == to {
			continue
		}
		if err := h.Update(func(tx *ptx.Tx) error {
			if err := put(tx, from, get(tx, from)-1); err != nil {
				return err
			}
			return put(tx, to, get(tx, to)+1)
		}); err != nil {
			log.Fatal(err)
		}
		sys.Pump()
	}

	// An aborted transaction leaves no trace.
	abort := errors.New("validation failed")
	err = h.Update(func(tx *ptx.Tx) error {
		if err := put(tx, 0, 999999); err != nil {
			return err
		}
		return abort // e.g. a constraint check failed
	})
	fmt.Printf("aborted transaction returned %q; item 0 untouched\n", err)

	fmt.Println("\n*** power failure ***")
	report := sys.SimulatePowerFailure()
	fmt.Printf("flushed %d pages in %v — survived: %v\n",
		report.PagesFlushed, report.FlushTime, report.Survived)

	recovered, _, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := recovered.Map("inventory", 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	h2, err := ptx.Open(m2, logPartition) // rolls back any in-flight tx
	if err != nil {
		log.Fatal(err)
	}
	var total uint64
	if err := h2.View(func(tx *ptx.Tx) error {
		for i := 0; i < items; i++ {
			total += get(tx, i)
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter reboot: total stock = %d (want %d) — conservation proves\n", total, items*100)
	fmt.Println("every transaction was all-or-nothing across the power cycle")
	if total != items*100 {
		log.Fatal("stock not conserved")
	}
}
