// multitenant: the paper's §6.3 deployment vision — "cloud providers can
// employ techniques similar to memory ballooning to reallocate
// battery/dirty-budget among co-located tenants and benefit from inherent
// statistical multiplexing effects."
//
// Two tenants share one server battery: a bursty interactive service and
// a quiet background one. The example runs the pair twice — once with a
// rigid half-and-half battery split and once with a pressure-driven pool
// — and shows the bursty tenant stalling far less under pooling, while
// the quiet tenant keeps its guaranteed floor.
//
// Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/tenancy"
)

const (
	tenantPages = 1024
	totalBudget = 256 // pages the shared battery can flush
	floorPages  = 32  // each tenant's guaranteed minimum
	steps       = 400 // 400 ms of traffic
)

type tenant struct {
	name   string
	region *nvdram.Region
	mgr    *core.Manager
}

func newTenant(clock *sim.Clock, events *sim.Queue, name string, budget int) (*tenant, error) {
	region, err := nvdram.New(clock, nvdram.Config{Size: tenantPages * 4096})
	if err != nil {
		return nil, err
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		return nil, err
	}
	return &tenant{name: name, region: region, mgr: mgr}, nil
}

// drive runs the asymmetric traffic: bursts of fresh-page writes for the
// interactive tenant, a trickle for the background one.
func drive(clock *sim.Clock, events *sim.Queue, bursty, quiet *tenant) error {
	rng := sim.NewRNG(7)
	bp, qp := 0, 0
	for step := 0; step < steps; step++ {
		writes := 1
		if (step/20)%2 == 0 {
			writes = 12 // burst phase
		}
		for i := 0; i < writes; i++ {
			if rng.Intn(3) > 0 {
				bp++
			}
			if err := bursty.region.WriteAt([]byte{byte(step + 1)}, int64(bp%tenantPages)*4096); err != nil {
				return err
			}
		}
		if err := quiet.region.WriteAt([]byte{byte(step + 1)}, int64(qp%tenantPages)*4096); err != nil {
			return err
		}
		if step%7 == 0 {
			qp++
		}
		clock.Advance(sim.Millisecond)
		events.RunUntil(clock, clock.Now())
	}
	return nil
}

func main() {
	// Run 1: static half-and-half split.
	clock1 := sim.NewClock()
	events1 := sim.NewQueue()
	b1, err := newTenant(clock1, events1, "interactive", totalBudget/2)
	if err != nil {
		log.Fatal(err)
	}
	q1, err := newTenant(clock1, events1, "background", totalBudget/2)
	if err != nil {
		log.Fatal(err)
	}
	if err := drive(clock1, events1, b1, q1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static split (%d/%d pages):\n", totalBudget/2, totalBudget/2)
	fmt.Printf("  interactive tenant: %d forced cleans, %v stalled on the SSD\n",
		b1.mgr.Stats().ForcedCleans, b1.mgr.Stats().FaultWaitTotal)

	// Run 2: the same battery, pooled and rebalanced by pressure.
	clock2 := sim.NewClock()
	events2 := sim.NewQueue()
	b2, err := newTenant(clock2, events2, "interactive", totalBudget/2)
	if err != nil {
		log.Fatal(err)
	}
	q2, err := newTenant(clock2, events2, "background", totalBudget/2)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := tenancy.NewPool(clock2, events2, totalBudget, 5*sim.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	tb, err := pool.Attach("interactive", b2.mgr, floorPages)
	if err != nil {
		log.Fatal(err)
	}
	tq, err := pool.Attach("background", q2.mgr, floorPages)
	if err != nil {
		log.Fatal(err)
	}
	if err := drive(clock2, events2, b2, q2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npooled battery (%d pages, floors %d):\n", totalBudget, floorPages)
	fmt.Printf("  interactive tenant: %d forced cleans, %v stalled on the SSD\n",
		b2.mgr.Stats().ForcedCleans, b2.mgr.Stats().FaultWaitTotal)
	fmt.Printf("  final grants after %d rebalances: interactive %d, background %d\n",
		pool.Stats().Rebalances, tb.Granted(), tq.Granted())

	fewerCleans := float64(b1.mgr.Stats().ForcedCleans-b2.mgr.Stats().ForcedCleans) /
		float64(b1.mgr.Stats().ForcedCleans) * 100
	fmt.Printf("\nstatistical multiplexing cut the bursty tenant's budget stalls by %.0f%%\n", fewerCleans)
	pool.Close()
}
