// kvcache: the paper's motivating application — an in-memory key-value
// cache (Redis-like) whose entire dataset lives in Viyojit-managed
// NV-DRAM and therefore restarts *warm* after a power cycle, with a
// battery an order of magnitude smaller than the data it protects.
//
// The program loads a dataset, serves a skewed read/write mix, pulls the
// plug mid-traffic, reboots, reopens the store over the recovered heap,
// and verifies every key.
//
// Run with:
//
//	go run ./examples/kvcache
package main

import (
	"fmt"
	"log"

	"viyojit"
	"viyojit/internal/dist"
	"viyojit/internal/kvstore"
	"viyojit/internal/pheap"
	"viyojit/internal/sim"
)

const (
	nvdramSize = 64 << 20
	heapSize   = 32 << 20
	records    = 5000
)

func key(i int64) []byte { return []byte(fmt.Sprintf("user%08d", i)) }

func value(i int64, version int) []byte {
	return []byte(fmt.Sprintf("profile-%d-v%d-%032d", i, version, i*7))
}

func main() {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: nvdramSize})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sys.Map("cache-heap", heapSize)
	if err != nil {
		log.Fatal(err)
	}
	heap, err := pheap.Format(m)
	if err != nil {
		log.Fatal(err)
	}
	store, err := kvstore.Create(heap, 4096)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loading %d records into the persistent heap (budget %d pages)...\n",
		records, sys.DirtyBudget())
	versions := make(map[int64]int, records)
	for i := int64(0); i < records; i++ {
		if err := store.Put(key(i), value(i, 0)); err != nil {
			log.Fatal(err)
		}
		versions[i] = 0
		sys.Pump()
	}

	fmt.Println("serving a zipf-skewed 50/50 read/update mix...")
	rng := sim.NewRNG(7)
	chooser := dist.NewScrambledZipfian(rng.Fork(), records, dist.ZipfianConstant)
	for op := 0; op < 20_000; op++ {
		i := chooser.Next()
		if rng.Float64() < 0.5 {
			if _, ok, err := store.Get(key(i)); err != nil || !ok {
				log.Fatalf("get %d: ok=%v err=%v", i, ok, err)
			}
		} else {
			versions[i]++
			if err := store.Put(key(i), value(i, versions[i])); err != nil {
				log.Fatal(err)
			}
		}
		sys.Pump()
	}
	st := sys.Stats()
	fmt.Printf("traffic done: %d dirty pages (budget %d), %d faults, %d proactive cleans\n",
		sys.DirtyCount(), sys.DirtyBudget(), st.Faults, st.ProactiveCleans)

	fmt.Println("\n*** power failure mid-traffic ***")
	report := sys.SimulatePowerFailure()
	fmt.Printf("flushed %d pages in %v — survived: %v\n",
		report.PagesFlushed, report.FlushTime, report.Survived)
	if !report.Survived {
		log.Fatal("battery did not cover the flush; provisioning bug")
	}

	// Reboot: recover NV-DRAM from the SSD and REOPEN the existing store
	// — no reload, no cold cache.
	recovered, restore, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := recovered.Map("cache-heap", heapSize)
	if err != nil {
		log.Fatal(err)
	}
	heap2, err := pheap.Open(m2)
	if err != nil {
		log.Fatal(err)
	}
	store2, err := kvstore.Open(heap2)
	if err != nil {
		log.Fatal(err)
	}
	n, err := store2.Len()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrebooted in %v with %d records already present (warm cache)\n",
		restore.RestoreTime, n)

	// Verify every record, including the versions updated mid-traffic.
	for i := int64(0); i < records; i++ {
		got, ok, err := store2.Get(key(i))
		if err != nil || !ok {
			log.Fatalf("record %d lost across power cycle (ok=%v err=%v)", i, ok, err)
		}
		if string(got) != string(value(i, versions[i])) {
			log.Fatalf("record %d has stale contents after recovery", i)
		}
		recovered.Pump()
	}
	fmt.Printf("verified all %d records, latest versions intact — no cold start\n", records)
}
