// Quickstart: the smallest end-to-end Viyojit program.
//
// It provisions battery-backed DRAM whose battery only covers a fraction
// of the capacity, writes durable data through the mmap-like API, cuts
// the power, and recovers — showing that the whole region is durable even
// though the battery is small.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"viyojit"
)

func main() {
	// 64 MiB of NV-DRAM with the default battery: enough energy to flush
	// ~12.5 % of it on power failure.
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 64 << 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dirty budget: %d pages for a %d-page region\n",
		sys.DirtyBudget(), 64<<20/4096)

	// Map a persistent region, just like mmap.
	m, err := sys.Map("my-data", 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Writes run at DRAM speed; the first write to each page traps into
	// the manager, which tracks it against the budget.
	if err := m.WriteAt([]byte("hello, durable world"), 0); err != nil {
		log.Fatal(err)
	}
	sys.Pump() // let background work (epoch ticks, IO) run

	// Power failure: the dirty set — bounded by the budget — is flushed
	// on battery energy.
	report := sys.SimulatePowerFailure()
	fmt.Printf("power failed: flushed %d pages in %v, survived=%v\n",
		report.PagesFlushed, report.FlushTime, report.Survived)

	// Reboot: NV-DRAM reloads from the SSD and the data is back.
	recovered, restore, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := recovered.Map("my-data", 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 20)
	if err := m2.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d pages in %v; data: %q\n",
		restore.PagesRestored, restore.RestoreTime, buf)
}
