// txlog: NVM-backed database logging — the use case the paper's
// introduction motivates (its refs [36], [38]: storage-class-memory
// logging for transaction systems). A bank ledger appends every transfer
// to a write-ahead log living in Viyojit-managed NV-DRAM, the power
// fails mid-workload, and the rebooted process replays the log to
// rebuild exact balances — on a battery sized for an eighth of the
// memory.
//
// Run with:
//
//	go run ./examples/txlog
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"viyojit"
	"viyojit/internal/sim"
	"viyojit/internal/wal"
)

const (
	accounts = 64
	txns     = 3000
)

type transfer struct {
	From, To uint32
	Amount   uint32
}

func (t transfer) encode() []byte {
	var b [12]byte
	binary.LittleEndian.PutUint32(b[0:], t.From)
	binary.LittleEndian.PutUint32(b[4:], t.To)
	binary.LittleEndian.PutUint32(b[8:], t.Amount)
	return b[:]
}

func decode(b []byte) transfer {
	return transfer{
		From:   binary.LittleEndian.Uint32(b[0:]),
		To:     binary.LittleEndian.Uint32(b[4:]),
		Amount: binary.LittleEndian.Uint32(b[8:]),
	}
}

func main() {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 16 << 20})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sys.Map("ledger-log", 8<<20)
	if err != nil {
		log.Fatal(err)
	}
	l, err := wal.Create(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger log on NV-DRAM; dirty budget %d pages\n", sys.DirtyBudget())

	// Apply transfers: balances in volatile memory, durability from the
	// log (the classic ARIES-style split).
	balances := make([]int64, accounts)
	for i := range balances {
		balances[i] = 1000
	}
	rng := sim.NewRNG(42)
	for i := 0; i < txns; i++ {
		t := transfer{
			From:   uint32(rng.Intn(accounts)),
			To:     uint32(rng.Intn(accounts)),
			Amount: uint32(rng.Intn(100) + 1),
		}
		if _, err := l.Append(t.encode()); err != nil {
			log.Fatal(err)
		}
		balances[t.From] -= int64(t.Amount)
		balances[t.To] += int64(t.Amount)
		sys.Pump()
	}
	fmt.Printf("appended %d transfers; account 0 balance: %d\n", txns, balances[0])

	fmt.Println("\n*** power failure ***")
	report := sys.SimulatePowerFailure()
	fmt.Printf("flushed %d dirty pages in %v — survived: %v\n",
		report.PagesFlushed, report.FlushTime, report.Survived)

	// Reboot: volatile balances are gone; the log is not.
	recovered, _, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := recovered.Map("ledger-log", 8<<20)
	if err != nil {
		log.Fatal(err)
	}
	l2, err := wal.Open(m2)
	if err != nil {
		log.Fatal(err)
	}
	rebuilt := make([]int64, accounts)
	for i := range rebuilt {
		rebuilt[i] = 1000
	}
	n := 0
	if err := l2.Replay(func(_ uint64, payload []byte) error {
		t := decode(payload)
		rebuilt[t.From] -= int64(t.Amount)
		rebuilt[t.To] += int64(t.Amount)
		n++
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d transfers after reboot\n", n)
	for i := range balances {
		if balances[i] != rebuilt[i] {
			log.Fatalf("account %d: %d != %d — ledger diverged", i, balances[i], rebuilt[i])
		}
	}
	fmt.Printf("all %d account balances rebuilt exactly; account 0: %d\n", accounts, rebuilt[0])
}
