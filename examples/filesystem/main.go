// filesystem: a persistent file system on battery-backed DRAM — the
// application class the paper's introduction lists first (NVM file
// systems like BPFS/PMFS/NOVA) and the setting of its §3 analysis.
// A file tree is built and written at DRAM speed, the power fails, and
// the remounted volume has every directory and byte intact — with a
// battery covering ~12.5 % of the memory.
//
// Run with:
//
//	go run ./examples/filesystem
package main

import (
	"bytes"
	"fmt"
	"log"

	"viyojit"
	"viyojit/internal/nvfs"
)

func main() {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sys.Map("volume-a", 16<<20)
	if err != nil {
		log.Fatal(err)
	}
	fs, err := nvfs.Format(m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mounted a %d MiB NV-DRAM volume (dirty budget %d pages)\n",
		16, sys.DirtyBudget())

	// Build a small service's state directory.
	for _, dir := range []string{"/etc", "/var", "/var/db"} {
		if err := fs.Mkdir(dir); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.Create("/etc/service.conf"); err != nil {
		log.Fatal(err)
	}
	if err := fs.WriteFile("/etc/service.conf", []byte("retries=3\nregion=eu\n"), 0); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		path := fmt.Sprintf("/var/db/segment-%d", i)
		if err := fs.Create(path); err != nil {
			log.Fatal(err)
		}
		seg := bytes.Repeat([]byte{byte('A' + i)}, 100*1024)
		if err := fs.WriteFile(path, seg, 0); err != nil {
			log.Fatal(err)
		}
		sys.Pump()
	}
	st := sys.Stats()
	fmt.Printf("wrote config + 8 × 100 KiB segments: %d dirty pages, %d proactive cleans\n",
		sys.DirtyCount(), st.ProactiveCleans)

	fmt.Println("\n*** power failure ***")
	report := sys.SimulatePowerFailure()
	fmt.Printf("flushed %d pages in %v — survived: %v\n",
		report.PagesFlushed, report.FlushTime, report.Survived)

	recovered, rr, err := sys.Recover()
	if err != nil {
		log.Fatal(err)
	}
	m2, err := recovered.Map("volume-a", 16<<20)
	if err != nil {
		log.Fatal(err)
	}
	fs2, err := nvfs.Open(m2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nremounted in %v; tree:\n", rr.RestoreTime)
	for _, dir := range []string{"/", "/etc", "/var", "/var/db"} {
		entries, err := fs2.ReadDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		for _, e := range entries {
			kind := "file"
			if e.IsDir {
				kind = "dir "
			}
			path := dir + "/" + e.Name
			if dir == "/" {
				path = "/" + e.Name
			}
			fmt.Printf("  %s %-24s %7d bytes\n", kind, path, e.Size)
		}
	}
	conf := make([]byte, 20)
	if err := fs2.ReadFile("/etc/service.conf", conf, 0); err != nil {
		log.Fatal(err)
	}
	seg := make([]byte, 100*1024)
	if err := fs2.ReadFile("/var/db/segment-3", seg, 0); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(seg, bytes.Repeat([]byte{'D'}, 100*1024)) {
		log.Fatal("segment contents corrupted")
	}
	fmt.Printf("\nconfig reads back: %q — volume fully intact\n", conf)
}
