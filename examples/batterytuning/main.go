// batterytuning: the paper's §8 scenario — batteries wear out, cells
// fail, and capacity fluctuates with temperature. Because Viyojit derives
// its dirty budget from the battery, the budget can be retuned at runtime
// instead of the server having to stop when capacity drops below the
// over-provisioning margin.
//
// The example dirties data up to the budget, then degrades the battery in
// steps (ageing, then a cell failure), showing the budget shrink and the
// dirty set being cleaned down each time — and finally proves a power
// failure on the degraded battery still loses nothing.
//
// Run with:
//
//	go run ./examples/batterytuning
package main

import (
	"fmt"
	"log"

	"viyojit"
)

func main() {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 32 << 20})
	if err != nil {
		log.Fatal(err)
	}
	m, err := sys.Map("tenant-heap", 16<<20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("battery: %.1f J nameplate, %.1f J effective → budget %d pages\n",
		sys.Battery().NameplateJoules(), sys.Battery().EffectiveJoules(), sys.DirtyBudget())

	// Fill the dirty set to the budget.
	for p := 0; p < sys.DirtyBudget()*2; p++ {
		if err := m.WriteAt([]byte{byte(p + 1)}, int64(p%4096)*4096); err != nil {
			log.Fatal(err)
		}
		sys.Pump()
	}
	fmt.Printf("after traffic: %d dirty pages\n\n", sys.DirtyCount())

	// Step 1: four years of ageing (~20 % capacity loss).
	if err := sys.Battery().Age(0.20); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 20%% ageing:   budget %4d pages, dirty %4d (cleaned down synchronously)\n",
		sys.DirtyBudget(), sys.DirtyCount())

	// Step 2: a cell fails, halving the remaining capacity.
	if err := sys.Battery().SetCapacityJoules(sys.Battery().NameplateJoules() / 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after cell failure: budget %4d pages, dirty %4d\n",
		sys.DirtyBudget(), sys.DirtyCount())
	if sys.DirtyCount() > sys.DirtyBudget() {
		log.Fatal("retune failed to re-establish the durability bound")
	}
	fmt.Printf("retune cleans performed: %d\n\n", sys.Stats().RetuneCleans)

	// The durability guarantee holds on the degraded battery.
	report := sys.SimulatePowerFailure()
	fmt.Printf("power failure on the degraded battery: flushed %d pages in %v using %.2f/%.2f J — survived: %v\n",
		report.PagesFlushed, report.FlushTime,
		report.EnergyUsedJoules, report.EnergyAvailableJoules, report.Survived)
	if err := sys.VerifyDurability(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("no data lost: the server kept operating through battery degradation")
}
