// Package viyojit is the public facade of the Viyojit reproduction: a
// battery-backed DRAM (NV-DRAM) manager that decouples battery capacity
// from DRAM capacity by bounding the number of dirty pages to what the
// provisioned battery can flush on power failure (Kateja et al., ISCA
// 2017).
//
// A System bundles the full simulated stack — virtual clock, software
// MMU, NV-DRAM region, SSD, battery, and the dirty-budget manager — and
// exposes the paper's mmap-like API:
//
//	sys, _ := viyojit.New(viyojit.Config{
//		NVDRAMSize: 64 << 20,
//		Battery:    viyojit.BatteryConfig{CapacityJoules: 40},
//	})
//	m, _ := sys.Map("heap", 16<<20)
//	_ = m.WriteAt([]byte("durable at DRAM speed"), 0)
//	sys.Pump()
//	report := sys.SimulatePowerFailure()   // flushes the dirty set
//	recovered, _ := sys.Recover()          // reboot, warm from the SSD
//
// Writes to clean pages trap into the manager, which tracks and bounds
// the dirty set; a background epoch task proactively copies the least
// recently updated pages to the SSD so bursts don't block. Durability
// holds for the entire NV-DRAM even though the battery only covers the
// dirty budget.
package viyojit

import (
	"context"
	"fmt"
	"io"
	"sync"

	"viyojit/internal/battery"
	"viyojit/internal/blackbox"
	"viyojit/internal/core"
	"viyojit/internal/faultinject"
	"viyojit/internal/health"
	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
	"viyojit/internal/nvdram"
	"viyojit/internal/obs"
	"viyojit/internal/pheap"
	"viyojit/internal/power"
	"viyojit/internal/recovery"
	"viyojit/internal/scrub"
	"viyojit/internal/sensor"
	"viyojit/internal/serve"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// Re-exported types, so downstream code speaks one package.
type (
	// Mapping is a named NV-DRAM range returned by System.Map.
	Mapping = core.Mapping
	// VictimPolicy orders dirty pages for cleaning; see LRUUpdate.
	VictimPolicy = core.VictimPolicy
	// ManagerStats are the dirty-budget manager's counters.
	ManagerStats = core.Stats
	// PowerFailReport describes a simulated power-loss flush.
	PowerFailReport = core.PowerFailReport
	// BatteryConfig describes the provisioned battery.
	BatteryConfig = battery.Config
	// SSDConfig describes the backing device.
	SSDConfig = ssd.Config
	// PowerModel is the server's flush-time power model.
	PowerModel = power.Model
	// Duration is virtual time in nanoseconds.
	Duration = sim.Duration
	// HealthConfig tunes the runtime health monitor.
	HealthConfig = health.Config
	// HealthSnapshot is one health-monitor sample.
	HealthSnapshot = health.Snapshot
	// BudgetPolicy is the runtime-tunable budget-derivation policy.
	BudgetPolicy = health.Policy
	// HealthState is the manager's rung on the degradation ladder.
	HealthState = core.HealthState
	// ScrubConfig tunes the background integrity scrubber.
	ScrubConfig = scrub.Config
	// SensorConfig tunes the fault-tolerant energy-telemetry fusion
	// the dirty budget is derived from (see internal/sensor).
	SensorConfig = sensor.Config
	// SensorFaultConfig tunes seeded gauge-fault injection
	// (faultinject.SensorInjector) for telemetry chaos testing.
	SensorFaultConfig = faultinject.SensorConfig
	// ScrubStats are the scrubber's counters.
	ScrubStats = scrub.Stats
	// QuarantinedPage is one corrupt durable page with no repair path.
	QuarantinedPage = scrub.Quarantined
	// IntegrityReport is the per-page repair/quarantine accounting of a
	// verified restore (System.Recover).
	IntegrityReport = recovery.IntegrityReport
	// ServeConfig tunes the concurrent serving front-end (System.Serve).
	ServeConfig = serve.Config
	// ServeRequest is one unit of admission for the serving front-end.
	ServeRequest = serve.Request
	// ServeResult is a completed request's outcome.
	ServeResult = serve.Result
	// ServeStats are the front-end's admission/shedding counters.
	ServeStats = serve.Stats
	// ServeExec is the execution context a request's Op receives.
	ServeExec = serve.Exec
	// IdemOp is an idempotently-executed mutation (exactly-once across
	// retries and power failures; see System.SubmitIdempotent).
	IdemOp = serve.IdemOp
	// IdemResult is an idempotent request's outcome, including whether
	// it was answered from the intent journal's result cache.
	IdemResult = serve.IdemResult
	// RetryingClient drives idempotent ops with typed-error-aware
	// retries and jittered backoff (see System.NewRetryingClient).
	RetryingClient = serve.RetryingClient
	// RetryConfig tunes a RetryingClient.
	RetryConfig = serve.RetryConfig
	// IntentJournal is the battery-backed request intent journal that
	// makes serving exactly-once across power failure.
	IntentJournal = intent.Journal
	// IntentConfig tunes an intent journal (dedup window, metrics).
	IntentConfig = intent.Config
	// IntentStats are a journal's counters (append traffic, live
	// entries, compaction generation).
	IntentStats = intent.Stats
	// RecoveryCursor is the persistent, battery-backed recovery
	// progress cursor: which phase and record recovery has durably
	// completed, so a re-crash during replay resumes instead of
	// re-running (see System.NewRecoveryCursor).
	RecoveryCursor = recovery.Cursor
	// RecoveryProgress is a cursor's durable position.
	RecoveryProgress = recovery.Progress
	// RecoveryPhase names one phase of the restartable recovery
	// pipeline (restore, WAL replay, intent redo, drain).
	RecoveryPhase = recovery.Phase
	// ReplayOptions parameterises the restartable, budget-aware intent
	// replay (System.ReplayPendingWith).
	ReplayOptions = serve.ReplayOptions
	// ReplayStats reports what a restartable replay did.
	ReplayStats = serve.ReplayStats
	// MetricsRegistry is the system-wide observability registry
	// returned by System.Metrics.
	MetricsRegistry = obs.Registry
	// MetricsSnapshot is a consistent point-in-time view of every
	// instrument (obs.Registry.Snapshot).
	MetricsSnapshot = obs.Snapshot
	// MetricsExport bundles a metrics snapshot with the trace-span log.
	MetricsExport = obs.Export
	// MetricsSink receives live instrument updates (see obs.Sink); the
	// black-box flight recorder is the canonical implementation.
	MetricsSink = obs.Sink
	// BlackBoxRecorder is the crash-surviving flight recorder (enabled
	// by Config.BlackBox; see internal/blackbox).
	BlackBoxRecorder = blackbox.Recorder
	// BlackBoxRecord is one decoded flight-recorder ring entry.
	BlackBoxRecord = blackbox.Record
	// ForensicReport is the post-failure reconstruction walked out of
	// the flight recorder's battery-backed ring (System.Forensics).
	ForensicReport = blackbox.Report
)

// Serving-layer request classes and priorities (see internal/serve).
const (
	ClassClient     = serve.ClassClient
	ClassBackground = serve.ClassBackground
	PriorityLow     = serve.PriorityLow
	PriorityNormal  = serve.PriorityNormal
	PriorityHigh    = serve.PriorityHigh
)

// Idempotent mutation kinds (see serve.IdemOp).
const (
	IdemPut    = serve.IdemPut
	IdemDelete = serve.IdemDelete
	IdemRMW    = serve.IdemRMW
)

// The serving front-end's typed rejections; match with errors.Is.
var (
	// ErrOverloaded: admission control shed the request (queue full,
	// watermark, or ladder-driven shedding).
	ErrOverloaded = serve.ErrOverloaded
	// ErrDeadlineExceeded: the virtual-time deadline passed in queue or
	// a predicted clean-stall would miss it.
	ErrDeadlineExceeded = serve.ErrDeadlineExceeded
	// ErrReadOnly: the degradation ladder has writes blocked.
	ErrReadOnly = serve.ErrReadOnly
	// ErrServerClosed: the front-end was stopped by Stop/Close.
	ErrServerClosed = serve.ErrServerClosed
	// ErrPowerFailure: a power failure severed this server; queued and
	// in-flight requests fail with it. Retryable — replay the same
	// (client, seq) against the recovered system to learn the outcome
	// exactly once.
	ErrPowerFailure = serve.ErrPowerFailure
	// ErrRetriesExhausted wraps the last error after a RetryingClient
	// runs out of attempts or deadline.
	ErrRetriesExhausted = serve.ErrRetriesExhausted
	// ErrStaleSeq: an idempotent retry fell below the journal's dedup
	// window; its outcome is no longer known.
	ErrStaleSeq = serve.ErrStaleSeq
	// ErrSeqReuse: a client reused a sequence number for a different op.
	ErrSeqReuse = serve.ErrSeqReuse
)

// Retryable reports whether a serving-layer error is safe to retry:
// the request was never executed (overload/deadline shed) or its
// execution state is knowable through the intent journal (power
// failure). See serve.Retryable.
func Retryable(err error) bool { return serve.Retryable(err) }

// Degradation-ladder rungs (see core.HealthState).
const (
	StateHealthy        = core.StateHealthy
	StateDegraded       = core.StateDegraded
	StateEmergencyFlush = core.StateEmergencyFlush
	StateReadOnly       = core.StateReadOnly
)

// Victim policies (the paper's choice first).
var (
	// LRUUpdate cleans the least recently updated page first (§5.2).
	LRUUpdate VictimPolicy = core.LRUUpdate{}
	// FIFO cleans pages in dirtying order.
	FIFO VictimPolicy = core.FIFO{}
	// LFU cleans the least frequently updated page first.
	LFU VictimPolicy = core.LFU{}
)

// Config assembles a System. Zero values select the calibrated defaults
// documented on each field's type.
type Config struct {
	// NVDRAMSize is the battery-backed region size in bytes (required,
	// a positive multiple of the page size).
	NVDRAMSize int64
	// PageSize is the dirty-tracking granularity; 0 selects 4096.
	PageSize int
	// Battery is the provisioned battery. If CapacityJoules is 0, the
	// battery is provisioned for ~12.5 % of the region (the paper's
	// "11 % battery" configuration, with conservative-bandwidth margin).
	Battery BatteryConfig
	// Power is the server power model; the zero value selects
	// power.Default().
	Power PowerModel
	// SSD is the backing device; the zero value selects ssd defaults.
	SSD SSDConfig
	// Epoch is the dirty-bit scan period; 0 selects 1 ms.
	Epoch Duration
	// Policy selects clean victims; nil selects LRUUpdate.
	Policy VictimPolicy
	// SampleEvery enables dirty-footprint sampling at that period (see
	// System.Samples); 0 disables it.
	SampleEvery Duration
	// HardwareAssist selects the paper's §5.4 MMU-offload design: dirty
	// pages are counted by the (modelled) hardware instead of
	// write-protection traps, removing the first-write trap cost and
	// most of the tail latency. See core.Config.HardwareAssist.
	HardwareAssist bool
	// BandwidthDerating is the conservative fraction of the SSD's write
	// bandwidth used when converting battery joules into the dirty
	// budget (§5.1 calls for a conservative estimate); 0 selects 0.8.
	BandwidthDerating float64
	// Health tunes the runtime health monitor that re-derives the
	// budget from the live battery and SSD and operates the degradation
	// ladder. Zero values select the monitor's defaults (its
	// BandwidthDerating follows this Config's unless set explicitly).
	Health HealthConfig
	// DisableHealthMonitor turns the monitor off; budget retuning then
	// happens only through the battery's change hooks.
	DisableHealthMonitor bool
	// Scrub tunes the background integrity scrubber. Zero values select
	// the scrubber's defaults (5 % read-bandwidth share, 8-page bursts).
	Scrub ScrubConfig
	// DisableScrubber turns the background scan off. The scrubber still
	// exists for on-demand System.Scrub calls.
	DisableScrubber bool
	// Sensor tunes the fault-tolerant energy-telemetry layer: two
	// redundant battery estimators (coulomb counter + voltage-curve
	// SoC) fused with plausibility gating, staleness watchdog, and
	// conservative-lower-bound disagreement handling. The health
	// monitor and recovery budgeting consume the fused estimate, never
	// a single raw gauge. Zero values select the sensor's defaults,
	// with StaleAfter derived from the monitor interval. With healthy
	// gauges the fused estimate equals the battery model exactly, so
	// enabling the layer is numerically neutral.
	Sensor SensorConfig
	// DisableSensor reverts the budget chain to reading the raw
	// battery gauge directly (trusting a single gauge).
	DisableSensor bool
	// BlackBox enables the crash-surviving flight recorder: a
	// checksummed ring of binary event records in battery-backed pages,
	// Map'd before any application mapping and charged against the same
	// dirty budget as the heap. The registry tees budget, ladder,
	// sensor, serve, and recovery decisions into it (obs.Sink), and
	// after Recover the ring is walked into System.Forensics(). The
	// recorder degrades to sampling — never blocks — when the budget is
	// tight.
	BlackBox bool
	// BlackBoxPages sizes the recorder's ring; 0 selects 2 pages
	// (128 records at the default page size). Only read when BlackBox
	// is set.
	BlackBoxPages int
}

// fixedFlushOverhead is the flush-time allowance reserved when deriving
// the dirty budget from battery energy: per-IO latency, protection
// changes, and scheduling slack that don't scale with the page count.
const fixedFlushOverhead = Duration(500 * sim.Microsecond)

// System is a fully wired Viyojit stack. It is not safe for concurrent
// use: the simulation is single-goroutine (DESIGN.md §5). The lifecycle
// entry points — Close, Recover, RecoverWith — are the one exception:
// they serialise on an internal mutex and are idempotent, so shutdown
// paths that race (a defer against an explicit Close, a crash handler
// against a recovery loop) cannot double-stop the stack.
type System struct {
	clock    *sim.Clock
	events   *sim.Queue
	region   *nvdram.Region
	dev      *ssd.SSD
	batt     *battery.Battery
	pm       power.Model
	manager  *core.Manager
	monitor  *health.Monitor
	fused    *sensor.Fused
	scrubber *scrub.Scrubber
	server   *serve.Server
	reg      *obs.Registry
	cfg      Config

	// recorder and bbMap exist when Config.BlackBox is set; forensics
	// is populated on a recovered System (RecoverWith walks the
	// restored ring).
	recorder  *blackbox.Recorder
	bbMap     *core.Mapping
	forensics *blackbox.Report

	lifecycle sync.Mutex
	closed    bool
}

// New builds a System: region, device, battery, and manager, with the
// dirty budget derived from the battery and auto-retuned whenever the
// battery's capacity changes (§8).
func New(cfg Config) (*System, error) {
	if cfg.NVDRAMSize <= 0 {
		return nil, fmt.Errorf("viyojit: NVDRAMSize %d must be positive", cfg.NVDRAMSize)
	}
	if cfg.BandwidthDerating == 0 {
		cfg.BandwidthDerating = 0.8
	}
	if cfg.BandwidthDerating <= 0 || cfg.BandwidthDerating > 1 {
		return nil, fmt.Errorf("viyojit: bandwidth derating %v outside (0,1]", cfg.BandwidthDerating)
	}
	if cfg.Power == (power.Model{}) {
		cfg.Power = power.Default()
	}

	clock := sim.NewClock()
	events := sim.NewQueue()
	reg := obs.NewRegistry()
	region, err := nvdram.New(clock, nvdram.Config{Size: cfg.NVDRAMSize, PageSize: cfg.PageSize})
	if err != nil {
		return nil, err
	}
	devCfg := cfg.SSD
	if devCfg.PageSize == 0 {
		devCfg.PageSize = region.PageSize()
	}
	dev := ssd.New(clock, events, devCfg)
	dev.AttachObs(reg)

	conservativeBW := int64(float64(dev.Config().WriteBandwidth) * cfg.BandwidthDerating)
	battCfg := cfg.Battery
	if battCfg.CapacityJoules == 0 {
		// Default provisioning: an effective budget of 12.5 % of the
		// region.
		pages := region.NumPages() / 8
		if pages < 1 {
			pages = 1
		}
		needed := battery.JoulesForPages(cfg.Power, pages, conservativeBW, region.Size(), region.PageSize()) +
			cfg.Power.FlushWatts(region.Size())*fixedFlushOverhead.Seconds()
		dod := battCfg.DepthOfDischarge
		if dod == 0 {
			dod = 0.5
		}
		derate := battCfg.Derating
		if derate == 0 {
			derate = 1.0
		}
		battCfg.CapacityJoules = needed / (dod * derate)
	}
	batt, err := battery.New(battCfg)
	if err != nil {
		return nil, err
	}

	// Reserve fixed flush overhead (per-IO latency, fault-window slack)
	// before converting the remaining energy into pages, so small
	// budgets survive their own flushes. health.BudgetPages is the same
	// derivation the runtime monitor applies each tick.
	budgetForJoules := func(j float64) int {
		return health.BudgetPages(cfg.Power, j, conservativeBW, region.Size(), region.PageSize(), fixedFlushOverhead)
	}
	budget := budgetForJoules(batt.EffectiveJoules())
	if budget < 1 {
		return nil, fmt.Errorf("viyojit: battery of %.1f J effective cannot back even one page", batt.EffectiveJoules())
	}
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{
		DirtyBudgetPages: budget,
		Epoch:            cfg.Epoch,
		Policy:           cfg.Policy,
		SampleEvery:      cfg.SampleEvery,
		HardwareAssist:   cfg.HardwareAssist,
		Obs:              reg,
	})
	if err != nil {
		return nil, err
	}

	// The flight recorder maps FIRST — before any application mapping —
	// so its ring lands at the same region offset on every boot and the
	// first-fit recovery contract re-attaches it for free. Its pages
	// are ordinary budget-accounted pages; the TelemetryWritable gate
	// makes every append that cannot be afforded a counted drop instead
	// of a stall.
	var recorder *blackbox.Recorder
	var bbMap *core.Mapping
	if cfg.BlackBox {
		pages := cfg.BlackBoxPages
		if pages <= 0 {
			pages = 2
		}
		bbMap, err = mgr.Map("__blackbox", int64(pages)*int64(region.PageSize()))
		if err != nil {
			return nil, err
		}
		recorder, err = blackbox.New(bbMap, blackbox.Options{
			Now:  clock.Now,
			Gate: bbMap.TelemetryWritable,
		})
		if err != nil {
			return nil, err
		}
		reg.SetSink(recorder)
		recorder.Boot(int64(budget))
	}
	// Safe shrink: before a capacity-reducing change applies, drain the
	// dirty set down to what the *projected* energy covers — while the
	// battery still holds its current charge — so "dirty ≤ pages the
	// battery can flush" holds at every instant of the step-down.
	batt.OnShrink(func(_ *battery.Battery, projected float64) {
		pages := budgetForJoules(projected)
		if pages < 1 {
			pages = 1
		}
		_ = mgr.SetDirtyBudgetSync(pages)
	})
	// Publish battery energy the moment it changes (the health monitor
	// refreshes the same gauge each tick; capacity events should not
	// wait for the next tick to show up in exports). Milli-joules keep
	// the gauge integral.
	battGauge := reg.Gauge("battery_effective_millijoules")
	battGauge.Set(int64(batt.EffectiveJoules() * 1000))
	reg.Gauge("battery_nameplate_millijoules").Set(int64(batt.NameplateJoules() * 1000))
	batt.OnChange(func(b *battery.Battery) {
		battGauge.Set(int64(b.EffectiveJoules() * 1000))
		pages := budgetForJoules(b.EffectiveJoules())
		if pages < 1 {
			pages = 1
		}
		_ = mgr.SetDirtyBudget(pages)
	})

	// The fused telemetry layer sits between the battery model and
	// every budget consumer. Both estimators read the same simulated
	// battery (exactly, until a fault injector corrupts one), gated
	// against the nameplate as the physical bound, so a healthy sensor
	// is numerically identical to reading the battery directly.
	var fused *sensor.Fused
	if !cfg.DisableSensor {
		scfg := cfg.Sensor
		if scfg.Obs == nil {
			scfg.Obs = reg
		}
		if scfg.StaleAfter == 0 && cfg.Health.Interval != 0 {
			// The watchdog must outlast a few sampling periods or every
			// monitor tick would declare the gauges stale.
			scfg.StaleAfter = cfg.Health.Interval * 5 / 2
		}
		fused, err = sensor.New(scfg, batt.NameplateJoules,
			sensor.NewCoulombCounter("coulomb", batt.EffectiveJoules),
			sensor.NewVoltageSoC("voltage", batt.EffectiveJoules, 0))
		if err != nil {
			return nil, err
		}
		fused.Sample(clock.Now())
	}

	var mon *health.Monitor
	if !cfg.DisableHealthMonitor {
		hcfg := cfg.Health
		if hcfg.BandwidthDerating == 0 {
			hcfg.BandwidthDerating = cfg.BandwidthDerating
		}
		if hcfg.FlushOverhead == 0 {
			hcfg.FlushOverhead = fixedFlushOverhead
		}
		if hcfg.Obs == nil {
			hcfg.Obs = reg
		}
		if hcfg.Energy == nil && fused != nil {
			hcfg.Energy = fused
		}
		mon, err = health.NewMonitor(events, clock, batt, mgr, cfg.Power, hcfg)
		if err != nil {
			return nil, err
		}
	}

	// The scrubber always exists (on-demand Scrub calls work regardless);
	// only the paced background scan is optional. Its detections feed the
	// health monitor's ladder decisions.
	scrCfg := cfg.Scrub
	if scrCfg.Obs == nil {
		scrCfg.Obs = reg
	}
	scr := scrub.New(clock, events, dev, mgr, scrCfg)
	if !cfg.DisableScrubber {
		scr.Start()
	}
	if mon != nil {
		mon.AttachScrub(scr)
	}

	return &System{
		clock:    clock,
		events:   events,
		region:   region,
		dev:      dev,
		batt:     batt,
		pm:       cfg.Power,
		manager:  mgr,
		monitor:  mon,
		fused:    fused,
		scrubber: scr,
		reg:      reg,
		cfg:      cfg,
		recorder: recorder,
		bbMap:    bbMap,
	}, nil
}

// Map allocates a named NV-DRAM mapping (the paper's mmap-like API).
func (s *System) Map(name string, size int64) (*Mapping, error) {
	return s.manager.Map(name, size)
}

// Unmap persists and releases a mapping.
func (s *System) Unmap(m *Mapping) error { return s.manager.Unmap(m) }

// Pump delivers pending background events (epoch ticks, IO completions).
// Call it between batches of work, as a real application yields the CPU.
func (s *System) Pump() { s.manager.Pump() }

// Now returns the current virtual time.
func (s *System) Now() sim.Time { return s.clock.Now() }

// AdvanceTime moves virtual time forward and pumps events — "the
// application sleeps".
func (s *System) AdvanceTime(d Duration) {
	s.clock.Advance(d)
	s.Pump()
}

// DirtyBudget returns the current budget in pages.
func (s *System) DirtyBudget() int { return s.manager.DirtyBudget() }

// DirtyCount returns the pages currently dirty (not yet durable).
func (s *System) DirtyCount() int { return s.manager.DirtyCount() }

// Stats returns the manager's counters.
func (s *System) Stats() ManagerStats { return s.manager.Stats() }

// Metrics returns the system-wide observability registry: every
// subsystem (core, serve, scrub, health, ssd, battery) records onto it,
// and Snapshot/Export are safe to call concurrently with the serve
// dispatch loop.
func (s *System) Metrics() *MetricsRegistry { return s.reg }

// MetricsExport captures a consistent snapshot of every instrument plus
// the trace-span log. For a seeded single-goroutine run the export is
// byte-for-byte deterministic.
func (s *System) MetricsExport() MetricsExport { return s.reg.Export() }

// WriteMetricsText writes the line-oriented text exposition of the
// current metrics and trace to w.
func (s *System) WriteMetricsText(w io.Writer) error {
	return s.reg.Export().WriteText(w)
}

// WriteMetricsJSON writes the indented JSON exposition of the current
// metrics and trace to w.
func (s *System) WriteMetricsJSON(w io.Writer) error {
	return s.reg.Export().WriteJSON(w)
}

// Samples returns the dirty-footprint observability ring (empty unless
// Config.SampleEvery was set).
func (s *System) Samples() []core.Sample { return s.manager.Samples() }

// Battery returns the battery, e.g. to simulate capacity changes; the
// dirty budget retunes automatically on change.
func (s *System) Battery() *battery.Battery { return s.batt }

// SSD returns the backing device, e.g. to attach a fault injector
// (ssd.SetFaultInjector) or read device stats.
func (s *System) SSD() *ssd.SSD { return s.dev }

// Events returns the simulation's event queue, e.g. to schedule battery
// sag or install a crash-point hook (faultinject package).
func (s *System) Events() *sim.Queue { return s.events }

// Degraded reports whether the manager is in SSD-degraded mode (cleaning
// more aggressively because recent cleans failed).
func (s *System) Degraded() bool { return s.manager.Degraded() }

// Health returns the runtime health monitor (nil when
// Config.DisableHealthMonitor was set).
func (s *System) Health() *health.Monitor { return s.monitor }

// Sensor returns the fused energy-telemetry layer the budget is
// derived from (nil when Config.DisableSensor was set). Fault
// injectors attach to its estimators:
//
//	inj := faultinject.NewSensorInjector(faultinject.SensorConfig{Seed: 1, LieProb: 0.01})
//	sys.Sensor().Estimator(1).SetCorruptor(inj)
func (s *System) Sensor() *sensor.Fused { return s.fused }

// HealthState returns the manager's rung on the degradation ladder.
func (s *System) HealthState() HealthState { return s.manager.HealthState() }

// Manager exposes the dirty-budget manager, e.g. for ladder operations
// (Resume after an SSD replacement) or budget inspection.
func (s *System) Manager() *core.Manager { return s.manager }

// SetBudgetPolicy adjusts how conservatively the health monitor converts
// battery joules and SSD bandwidth into the dirty budget; the next
// monitor tick applies it. It errors when the monitor is disabled.
func (s *System) SetBudgetPolicy(p BudgetPolicy) error {
	if s.monitor == nil {
		return fmt.Errorf("viyojit: health monitor disabled")
	}
	return s.monitor.SetPolicy(p)
}

// Scrubber returns the background integrity scrubber, e.g. for pacing
// stats or the quarantine list.
func (s *System) Scrubber() *scrub.Scrubber { return s.scrubber }

// Scrub runs one full synchronous integrity pass over the durable set —
// every page checked against its checksum, corrupt pages repaired
// through the budget-enforced re-clean path or quarantined. It returns
// the number of corruptions detected this pass.
func (s *System) Scrub() uint64 { return s.scrubber.ScrubAll() }

// IntegrityStatus is System.IntegrityReport's summary of end-to-end
// data-integrity state: what the scrubber found and fixed, and what the
// device-level verification counters saw.
type IntegrityStatus struct {
	// Scrub are the scrubber's counters (detections, repairs, MTTD).
	Scrub ScrubStats
	// Quarantined lists corrupt durable pages with no repair path.
	Quarantined []QuarantinedPage
	// VerifyChecks and VerifyFailures are the device's cumulative
	// checksum verifications and failures (scrub, restore, and direct
	// verified reads combined).
	VerifyChecks   uint64
	VerifyFailures uint64
}

// IntegrityReport summarises the system's integrity state.
func (s *System) IntegrityReport() IntegrityStatus {
	devStats := s.dev.Stats()
	return IntegrityStatus{
		Scrub:          s.scrubber.Stats(),
		Quarantined:    s.scrubber.Quarantine(),
		VerifyChecks:   devStats.VerifyChecks,
		VerifyFailures: devStats.VerifyFailures,
	}
}

// BlackBox returns the flight recorder, or nil when Config.BlackBox
// was not set. Most callers never need it — the obs tee feeds it
// automatically — but tests and tools can Mark milestones or read
// LastSeq/Dropped through it.
func (s *System) BlackBox() *BlackBoxRecorder { return s.recorder }

// BlackBoxReport walks the recorder's ring as it stands right now and
// returns the forensic report — the same view a post-crash Recover
// would adopt if power failed at this instant. It errors when the
// recorder is disabled.
func (s *System) BlackBoxReport() (ForensicReport, error) {
	if s.recorder == nil {
		return ForensicReport{}, fmt.Errorf("viyojit: black box not enabled (set Config.BlackBox)")
	}
	w, err := blackbox.ReadAndWalk(s.bbMap)
	if err != nil {
		return ForensicReport{}, err
	}
	return blackbox.BuildReport(w), nil
}

// BlackBoxImage returns a copy of the raw ring bytes as they stand
// right now — the image an operator would pull off the battery-backed
// region for offline analysis (cmd/blackbox -in). It errors when the
// recorder is disabled.
func (s *System) BlackBoxImage() ([]byte, error) {
	if s.recorder == nil {
		return nil, fmt.Errorf("viyojit: black box not enabled (set Config.BlackBox)")
	}
	img := make([]byte, s.bbMap.Size())
	if err := s.bbMap.ReadAt(img, 0); err != nil {
		return nil, err
	}
	return img, nil
}

// Forensics returns the report recovered from the previous
// incarnation's flight-recorder ring — the crash-instant timeline,
// dirty/budget trajectories, and final ladder state. It is non-nil
// only on a System produced by Recover with the black box enabled.
func (s *System) Forensics() *ForensicReport { return s.forensics }

// NewStore formats a persistent heap on a fresh mapping and creates a
// KV store on it — the store most serving deployments front with
// System.Serve. Sizing mirrors the evaluation harness: one hash bucket
// per ~2 pages of heap, minimum 64.
func (s *System) NewStore(name string, size int64) (*kvstore.Store, error) {
	m, err := s.Map(name, size)
	if err != nil {
		return nil, err
	}
	heap, err := pheap.Format(m)
	if err != nil {
		return nil, err
	}
	buckets := int(size / 8192)
	if buckets < 64 {
		buckets = 64
	}
	return kvstore.Create(heap, buckets)
}

// OpenStore reopens a store that survived a power cycle: the recovery
// counterpart of NewStore. Call it on the System returned by Recover
// with the SAME name and size, and in the same order relative to other
// Map/NewStore/NewIntentJournal calls as at creation — mapping layout is
// first-fit, so identical call order re-attaches each mapping to its
// restored bytes.
func (s *System) OpenStore(name string, size int64) (*kvstore.Store, error) {
	m, err := s.Map(name, size)
	if err != nil {
		return nil, err
	}
	heap, err := pheap.Open(m)
	if err != nil {
		return nil, err
	}
	return kvstore.Open(heap)
}

// NewIntentJournal formats a request intent journal on a fresh mapping.
// The journal lives in battery-backed NV-DRAM like any other mapping, so
// its pages are dirty-budget-accounted and flushed by the same powerfail
// path as the data they protect.
func (s *System) NewIntentJournal(name string, size int64, cfg IntentConfig) (*IntentJournal, error) {
	m, err := s.Map(name, size)
	if err != nil {
		return nil, err
	}
	if cfg.Obs == nil {
		cfg.Obs = s.reg
	}
	return intent.Create(m, cfg)
}

// OpenIntentJournal reopens a journal after Recover (same name, size,
// and call-order contract as OpenStore) and rebuilds the dedup table
// from the committed record prefix, dropping a torn tail if the crash
// interrupted an append.
//
// After opening, resolve in-flight intents with ReplayPending BEFORE
// serving resumes — a journaled redo image is only sound against
// pre-crash store state.
func (s *System) OpenIntentJournal(name string, size int64) (*IntentJournal, error) {
	m, err := s.Map(name, size)
	if err != nil {
		return nil, err
	}
	return intent.Open(m, s.reg)
}

// ReplayPending applies the redo image of every journaled intent whose
// result never committed — the requests in flight when power failed —
// and completes them in the journal, so every retry afterwards dedups.
// Call it between OpenIntentJournal and Serve.
func (s *System) ReplayPending(store *kvstore.Store, j *IntentJournal) (int, error) {
	return serve.ReplayPending(store, j)
}

// ReplayPendingWith is ReplayPending made restartable and budget-aware:
// with a cursor (opts.Cursor) each redo's completion is durably
// recorded before the next starts, so a power failure mid-replay
// resumes instead of re-running; the system's manager paces the redos
// against the current dirty budget, and the system's registry receives
// the replay instruments. See serve.ReplayPendingWith for the full
// contract.
func (s *System) ReplayPendingWith(store *kvstore.Store, j *IntentJournal, cursor *RecoveryCursor) (ReplayStats, error) {
	return serve.ReplayPendingWith(store, j, serve.ReplayOptions{
		Cursor: cursor,
		Mgr:    s.manager,
		Obs:    s.reg,
	})
}

// NewRecoveryCursor formats a persistent recovery cursor over a named
// battery-backed mapping (at least recovery.MinCursorBytes long) and
// wires its instruments to the system registry. Create it once at
// format time; reopen with OpenRecoveryCursor after a power cycle.
func (s *System) NewRecoveryCursor(name string, size int64) (*RecoveryCursor, error) {
	m, err := s.Map(name, size)
	if err != nil {
		return nil, err
	}
	return recovery.CreateCursor(m, s.reg)
}

// OpenRecoveryCursor reopens a persistent recovery cursor from a named
// mapping after a power cycle. A torn slot write costs one write, never
// the cursor: the reader adopts the newest intact slot.
func (s *System) OpenRecoveryCursor(name string, size int64) (*RecoveryCursor, error) {
	m, err := s.Map(name, size)
	if err != nil {
		return nil, err
	}
	return recovery.OpenCursor(m, s.reg)
}

// SubmitIdempotent routes one exactly-once mutation through the serving
// front-end: op runs at most once for (clientID, seq) across retries and
// power failures. Serve must have been called with a Journal configured.
func (s *System) SubmitIdempotent(ctx context.Context, clientID, seq uint64, op IdemOp, opts ServeRequest) (IdemResult, error) {
	if s.server == nil {
		return IdemResult{}, fmt.Errorf("viyojit: not serving; call Serve first")
	}
	return s.server.SubmitIdempotent(ctx, clientID, seq, op, opts)
}

// NewRetryingClient builds a retrying client bound to the running
// front-end. id must be non-zero and unique per live client.
func (s *System) NewRetryingClient(id, seed uint64, cfg RetryConfig) (*RetryingClient, error) {
	if s.server == nil {
		return nil, fmt.Errorf("viyojit: not serving; call Serve first")
	}
	return serve.NewRetryingClient(s.server, id, seed, cfg)
}

// Serve starts the concurrent request front-end over this system: an
// actor-style dispatch loop takes ownership of the clock, event queue,
// manager, and store, and many client goroutines submit through
// System.Submit (or the returned server). store may be nil when
// requests only need the manager.
//
// While serving, the single-goroutine System methods (Pump,
// AdvanceTime, Map, Scrub, ...) must not be called concurrently with
// the server — route that work through Submit as ClassBackground
// requests instead. Stop serving with Server().Stop() or Close.
func (s *System) Serve(store *kvstore.Store, cfg ServeConfig) (*serve.Server, error) {
	if s.server != nil {
		return nil, fmt.Errorf("viyojit: already serving")
	}
	if cfg.Obs == nil {
		cfg.Obs = s.reg
	}
	srv, err := serve.New(s.clock, s.events, s.manager, store, cfg)
	if err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	s.server = srv
	return srv, nil
}

// Server returns the running front-end (nil before Serve).
func (s *System) Server() *serve.Server { return s.server }

// Submit routes one request through the serving front-end. It errors
// if Serve has not been called.
func (s *System) Submit(ctx context.Context, req ServeRequest) (ServeResult, error) {
	if s.server == nil {
		return ServeResult{}, fmt.Errorf("viyojit: not serving; call Serve first")
	}
	return s.server.Submit(ctx, req)
}

// FlushAll synchronously cleans every dirty page (clean shutdown).
// The flight recorder is quiesced for the drain — the dirty gauge
// falling as each clean completes would otherwise tee appends that
// re-dirty ring pages under the loop trying to empty the dirty set —
// and resumes, drops counted, once the set is empty.
func (s *System) FlushAll() {
	resume := s.recorder.Quiesce()
	s.manager.FlushAll()
	resume()
}

// SimulatePowerFailure cuts power: the dirty set is flushed on battery
// energy and the report says whether the provisioned battery covered it.
// The system is stopped afterwards; use Recover to come back up.
func (s *System) SimulatePowerFailure() PowerFailReport {
	// Power is gone: the flight recorder stops at this exact instant,
	// so the flush's own bookkeeping (the dirty gauge falling to zero,
	// the flush span finishing) cannot re-dirty ring pages after the
	// energy audit began. The last ring record IS the crash instant.
	s.recorder.Seal()
	// Sample the battery live: a capacity change landing during the
	// flush (scheduled ageing, cell dropout) is charged against the
	// energy actually left at completion, not the pre-flush reading.
	return s.manager.PowerFailWith(s.pm, s.batt.EffectiveJoules)
}

// VerifyDurability checks byte-for-byte that the SSD holds the latest
// contents of every NV-DRAM page.
func (s *System) VerifyDurability() error { return s.manager.VerifyDurability() }

// RecoverOptions parameterises RecoverWith.
type RecoverOptions struct {
	// BudgetScale scales the recovered system's initial dirty budget
	// relative to what the battery charge available at recovery time
	// supports: a cascading outage recharges nothing between failures,
	// so the replaying system may have to live under a smaller budget
	// than the run that crashed. Values in (0, 1]; 0 selects 1.0. The
	// derived budget is floored at one page (health.RecoveryBudget) and
	// reported in RestoreReport.BudgetPages.
	BudgetScale float64
}

// Recover builds a fresh System of the same configuration whose NV-DRAM
// is reloaded from this system's SSD — the warm reboot after a power
// cycle. Every durable page is checksum-verified before it is restored:
// a corrupt page is quarantined and listed in the report's Integrity
// section, never silently handed back to the application. (After a true
// power cycle the DRAM copy is gone, so there is no repair source — the
// background scrubber is what catches corruption while repair is still
// possible.)
//
// Recover quiesces this system first (an idempotent Close): the durable
// store changes hands, and the old stack's background tasks must not
// keep mutating it. Calling Recover again afterwards is safe — the
// durable source is read-only here, so each call yields an independent
// fresh System.
func (s *System) Recover() (*System, recovery.RestoreReport, error) {
	return s.RecoverWith(RecoverOptions{})
}

// RecoverWith is Recover with the recovered budget re-derived from the
// battery energy actually on hand: the recovery-after-recovery path,
// where the battery may have sagged between outages (opts.BudgetScale).
func (s *System) RecoverWith(opts RecoverOptions) (*System, recovery.RestoreReport, error) {
	scale := opts.BudgetScale
	if scale == 0 {
		scale = 1.0
	}
	if scale < 0 || scale > 1 {
		return nil, recovery.RestoreReport{}, fmt.Errorf("viyojit: budget scale %v outside (0,1]", scale)
	}
	// The whole walk holds the lifecycle lock: quiesce and restore are
	// one critical section, so racing Recover calls serialise instead
	// of interleaving reads of the source device with each other (its
	// verify counters are not concurrency-safe) or with a Close.
	s.lifecycle.Lock()
	defer s.lifecycle.Unlock()
	// Sample the surviving battery BEFORE quiescing: this charge — not
	// the fresh system's nameplate figure — is what bounds the dirty
	// set the recovered run can afford until the battery recharges.
	// The sample goes through the fused sensor when one is attached:
	// recovery after an outage is exactly when a sagging pack makes
	// gauges least trustworthy, so the replay budget must come from
	// the conservative fusion, not a single possibly-lying gauge.
	effective := s.batt.EffectiveJoules()
	if s.fused != nil {
		effective = s.fused.Sample(s.clock.Now())
	}
	s.closeLocked()

	ns, err := New(s.cfg)
	if err != nil {
		return nil, recovery.RestoreReport{}, err
	}
	conservativeBW := int64(float64(ns.dev.Config().WriteBandwidth) * ns.cfg.BandwidthDerating)
	recBudget := health.RecoveryBudget(ns.pm, effective, scale, conservativeBW,
		ns.region.Size(), ns.region.PageSize(), fixedFlushOverhead)
	if err := ns.manager.SetDirtyBudget(recBudget); err != nil {
		ns.Close()
		return nil, recovery.RestoreReport{}, err
	}
	// The new System's device object represents the same physical SSD,
	// whose contents survived the power cycle: verify, seed its durable
	// store, then reload each page into NV-DRAM, charging the reboot's
	// clock for the reads. The walk covers every page with any durable
	// claim — a fully lost write (checksum acked, store empty) must be
	// detected, not skipped. Quarantined pages are not seeded: seeding
	// recomputes the checksum from the stored bytes, which would launder
	// corrupt data into a "verified" page.
	start := ns.clock.Now()
	restored := 0
	var integ recovery.IntegrityReport
	for _, page := range s.dev.DurablePageList() {
		integ.PagesVerified++
		if verr := s.dev.VerifyPage(page); verr != nil {
			integ.Quarantined = append(integ.Quarantined, page)
			continue
		}
		data, ok := s.dev.Durable(page)
		if !ok {
			continue
		}
		ns.dev.SeedDurable(page, data)
		loaded := ns.dev.ReadPage(page) // charges restore read time
		if err := ns.region.RestorePage(page, loaded); err != nil {
			return nil, recovery.RestoreReport{}, err
		}
		restored++
	}
	// Walk the restored flight-recorder ring into the forensic report
	// and adopt its sequence, so post-recovery records extend the
	// pre-crash timeline monotonically. (The fresh boot record New wrote
	// was overwritten wherever the restore reloaded ring pages — the
	// crash's view wins.)
	if ns.recorder != nil {
		w, werr := blackbox.ReadAndWalk(ns.bbMap)
		if werr != nil {
			return nil, recovery.RestoreReport{}, werr
		}
		rep := blackbox.BuildReport(w)
		ns.forensics = &rep
		ns.recorder.Adopt(w)
		ns.recorder.Append(blackbox.KindRecover, 0, int64(w.LastSeq), int64(w.Torn), 0, 0)
	}
	return ns, recovery.RestoreReport{
		PagesRestored: restored,
		RestoreTime:   ns.clock.Now().Sub(start),
		BudgetPages:   recBudget,
		Integrity:     integ,
	}, nil
}

// Close stops the serving front-end (if any), the health monitor, the
// scrubber, and the background epoch task, and drains in-flight IO.
// Close is idempotent and safe to race against itself and against
// Recover/RecoverWith: the first caller stops the stack, the rest
// return immediately.
func (s *System) Close() {
	s.lifecycle.Lock()
	defer s.lifecycle.Unlock()
	s.closeLocked()
}

func (s *System) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	if s.server != nil {
		s.server.Stop()
		s.server = nil
	}
	if s.monitor != nil {
		s.monitor.Close()
	}
	s.scrubber.Stop()
	s.manager.Close()
}
