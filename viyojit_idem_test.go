package viyojit

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// The facade's exactly-once contract end to end: idempotent mutations
// through Serve, a power failure, Recover, journal reopen, and the same
// (client, seq) pairs replayed against the recovered system — every
// retry answered from the rebuilt dedup table, nothing applied twice.
func TestExactlyOnceAcrossPowerCycle(t *testing.T) {
	sys := newTestSystem(t, Config{DisableScrubber: true, DisableHealthMonitor: true})
	store, err := sys.NewStore("store", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	j, err := sys.NewIntentJournal("intent", 64<<10, IntentConfig{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Serve(store, ServeConfig{Journal: j}); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	cl, err := sys.NewRetryingClient(7, 0xFACADE, RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inc := func() IdemOp {
		return IdemOp{Kind: IdemRMW, Key: []byte("ctr"), Modify: func(old []byte, ok bool) []byte {
			if !ok {
				return []byte{1}
			}
			return []byte{old[0] + 1}
		}}
	}
	var seqs []uint64
	for i := 0; i < 3; i++ {
		res, seq, err := cl.Do(ctx, inc())
		if err != nil {
			t.Fatal(err)
		}
		if res.Deduped || !bytes.Equal(res.Value, []byte{byte(i + 1)}) {
			t.Fatalf("increment %d: %+v", i, res)
		}
		seqs = append(seqs, seq)
	}
	// A live retry of an acked seq dedups server-side.
	if res, err := sys.SubmitIdempotent(ctx, 7, seqs[2], inc(), ServeRequest{}); err != nil || !res.Deduped {
		t.Fatalf("pre-crash retry: %+v err %v", res, err)
	}

	// Power cycle: stop serving, cut power, verify, reboot warm.
	sys.Server().Stop()
	report := sys.SimulatePowerFailure()
	if !report.Survived {
		t.Fatalf("provisioned battery did not cover the flush: %+v", report)
	}
	recovered, _, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()

	// Reopen in creation order so mappings re-attach to restored bytes.
	store2, err := recovered.OpenStore("store", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := recovered.OpenIntentJournal("intent", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if j2.TornOpen() {
		t.Fatal("clean shutdown produced a torn journal tail")
	}
	// Nothing was in flight at this (clean-stop) failure.
	if n, err := recovered.ReplayPending(store2, j2); err != nil || n != 0 {
		t.Fatalf("ReplayPending = %d, %v; want 0, nil", n, err)
	}
	if _, err := recovered.Serve(store2, ServeConfig{Journal: j2}); err != nil {
		t.Fatal(err)
	}

	// The client's retry stream, replayed: all acks swallowed by the
	// power cut must come back from the rebuilt dedup table.
	cl2, err := recovered.NewRetryingClient(7, 0xFACADE+1, RetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range seqs {
		res, err := cl2.DoSeq(ctx, seq, inc())
		if err != nil {
			t.Fatalf("replay of seq %d: %v", seq, err)
		}
		if !res.Deduped || !bytes.Equal(res.Value, []byte{byte(i + 1)}) {
			t.Fatalf("replay of seq %d re-executed: %+v", seq, res)
		}
	}
	// New work continues the stream exactly where it left off.
	cl2.SetNextSeq(seqs[len(seqs)-1] + 1)
	res, _, err := cl2.Do(ctx, inc())
	if err != nil || !bytes.Equal(res.Value, []byte{4}) {
		t.Fatalf("post-recovery increment: %+v err %v", res, err)
	}
	v, err := recovered.Submit(ctx, ServeRequest{Class: ClassBackground, Priority: PriorityHigh, Op: func(e ServeExec) (any, error) {
		val, ok, err := e.Store.Get([]byte("ctr"))
		if err != nil || !ok {
			return nil, err
		}
		return append([]byte(nil), val...), nil
	}})
	if err != nil || !bytes.Equal(v.Value.([]byte), []byte{4}) {
		t.Fatalf("counter after power cycle = %v, err %v; want 4 (exactly once)", v.Value, err)
	}
}

// The facade surfaces the serving error taxonomy with its retryability
// classification intact.
func TestFacadeErrorTaxonomy(t *testing.T) {
	for _, c := range []struct {
		err       error
		retryable bool
	}{
		{ErrOverloaded, true},
		{ErrDeadlineExceeded, true},
		{ErrPowerFailure, true},
		{ErrReadOnly, false},
		{ErrServerClosed, false},
		{ErrStaleSeq, false},
		{ErrSeqReuse, false},
	} {
		if got := Retryable(c.err); got != c.retryable {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.retryable)
		}
	}
	if !errors.Is(ErrRetriesExhausted, ErrRetriesExhausted) {
		t.Fatal("ErrRetriesExhausted must match itself")
	}
}
