package viyojit

// Facade-level wiring of the fault-tolerant energy telemetry: the fused
// sensor is on by default, transparent when healthy, conservative when
// a gauge lies, and the recovery path budgets from it.

import (
	"bytes"
	"testing"

	"viyojit/internal/faultinject"
)

func TestSensorDefaultWiring(t *testing.T) {
	sys := newTestSystem(t, Config{})
	f := sys.Sensor()
	if f == nil {
		t.Fatal("Sensor() nil with default config, want fused telemetry on by default")
	}
	truth := sys.Battery().EffectiveJoules()
	if got := f.Sample(sys.Now()); got != truth {
		t.Fatalf("healthy fused sample %v, want exactly battery truth %v", got, truth)
	}
}

func TestDisableSensorFallsBackToRawBattery(t *testing.T) {
	sys := newTestSystem(t, Config{DisableSensor: true})
	if sys.Sensor() != nil {
		t.Fatal("Sensor() non-nil with DisableSensor")
	}
	if sys.DirtyBudget() < 1 {
		t.Fatalf("budget %d with sensor disabled, want the usual battery-derived one", sys.DirtyBudget())
	}
	m, err := sys.Map("m", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	sys.Pump()
	if rep := sys.SimulatePowerFailure(); !rep.Survived {
		t.Fatalf("power failure not survived with sensor disabled: %+v", rep)
	}
}

// TestRecoverUnderLyingGauge: the voltage gauge over-reports 1.5x while
// the pack sags to half. The fused estimate must not follow the lie,
// and the recovery budget derived from it must still admit a working
// replay that restores the data.
func TestRecoverUnderLyingGauge(t *testing.T) {
	sys := newTestSystem(t, Config{})
	m, err := sys.Map("heap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives a lying fuel gauge")
	if err := m.WriteAt(payload, 4096); err != nil {
		t.Fatal(err)
	}
	sys.Pump()

	inj := faultinject.NewSensorInjector(faultinject.SensorConfig{
		Seed: 1, LieProb: 1, LieMagnitude: 0.5,
	})
	sys.Sensor().Estimator(1).SetCorruptor(inj)

	// Pack sags; the lying gauge now reports 1.5x of what is left.
	if err := sys.Battery().SetCapacityJoules(sys.Battery().NameplateJoules() / 2); err != nil {
		t.Fatal(err)
	}
	truth := sys.Battery().EffectiveJoules()
	if got := sys.Sensor().Sample(sys.Now()); got > truth*(1+1e-9) {
		t.Fatalf("fused %v over-reports truth %v under a 1.5x lying gauge", got, truth)
	}

	if rep := sys.SimulatePowerFailure(); !rep.Survived {
		t.Fatalf("power failure not survived: %+v", rep)
	}
	recovered, rr, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rr.PagesRestored == 0 {
		t.Fatal("nothing restored")
	}
	m2, err := recovered.Map("heap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := m2.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("recovered %q, want %q", got, payload)
	}
}
