package viyojit

import (
	"bytes"
	"testing"
	"testing/quick"

	"viyojit/internal/sim"
)

func newTestSystem(t testing.TB, cfg Config) *System {
	t.Helper()
	if cfg.NVDRAMSize == 0 {
		cfg.NVDRAMSize = 16 << 20
	}
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero NVDRAMSize accepted")
	}
	if _, err := New(Config{NVDRAMSize: 16 << 20, BandwidthDerating: 2}); err == nil {
		t.Fatal("derating 2 accepted")
	}
	if _, err := New(Config{NVDRAMSize: 16 << 20, Battery: BatteryConfig{CapacityJoules: 1e-12}}); err == nil {
		t.Fatal("microscopic battery accepted")
	}
}

func TestDefaultBudgetIsFractionOfRegion(t *testing.T) {
	sys := newTestSystem(t, Config{})
	pages := 16 << 20 / 4096
	b := sys.DirtyBudget()
	if b < pages/16 || b > pages/4 {
		t.Fatalf("default budget = %d pages of %d, want ~1/8", b, pages)
	}
}

func TestMapWritePowerFailRecover(t *testing.T) {
	sys := newTestSystem(t, Config{})
	m, err := sys.Map("heap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("must survive the power cut")
	if err := m.WriteAt(payload, 12345); err != nil {
		t.Fatal(err)
	}
	sys.Pump()

	report := sys.SimulatePowerFailure()
	if !report.Survived {
		t.Fatalf("provisioned battery did not cover the flush: %+v", report)
	}
	if err := sys.VerifyDurability(); err != nil {
		t.Fatal(err)
	}

	recovered, rr, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rr.PagesRestored == 0 {
		t.Fatal("nothing restored")
	}
	// The recovered system can map the same range and read the data
	// back (same allocator, same base for the first mapping).
	m2, err := recovered.Map("heap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := m2.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("recovered %q, want %q", got, payload)
	}
}

func TestDirtyBoundHeld(t *testing.T) {
	sys := newTestSystem(t, Config{})
	m, err := sys.Map("m", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	budget := sys.DirtyBudget()
	for p := 0; p < 2048; p++ {
		if err := m.WriteAt([]byte{byte(p)}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		sys.Pump()
		if sys.DirtyCount() > budget {
			t.Fatalf("dirty %d exceeds budget %d", sys.DirtyCount(), budget)
		}
	}
	if sys.Stats().PagesDirtied == 0 {
		t.Fatal("no pages dirtied")
	}
}

func TestBatteryChangeRetunesBudget(t *testing.T) {
	sys := newTestSystem(t, Config{})
	before := sys.DirtyBudget()
	if err := sys.Battery().SetCapacityJoules(sys.Battery().NameplateJoules() / 2); err != nil {
		t.Fatal(err)
	}
	after := sys.DirtyBudget()
	if after >= before {
		t.Fatalf("budget did not shrink on battery loss: %d -> %d", before, after)
	}
	// Sub-linear in joules: the fixed flush overhead is reserved first,
	// so the halved battery yields somewhat less than half the budget.
	if after > before/2 || after < before/8 {
		t.Fatalf("halved battery gave budget %d of %d, want in [%d, %d]", after, before, before/8, before/2)
	}
}

func TestAdvanceTimeDrivesEpochs(t *testing.T) {
	sys := newTestSystem(t, Config{})
	sys.AdvanceTime(10 * Duration(sim.Millisecond))
	if sys.Stats().Epochs < 9 {
		t.Fatalf("epochs after 10 ms = %d", sys.Stats().Epochs)
	}
	if sys.Now() == 0 {
		t.Fatal("clock did not advance")
	}
}

func TestFlushAllThenVerify(t *testing.T) {
	sys := newTestSystem(t, Config{})
	m, _ := sys.Map("m", 1<<20)
	for p := 0; p < 100; p++ {
		if err := m.WriteAt([]byte{0xEE}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		sys.Pump()
	}
	sys.FlushAll()
	if sys.DirtyCount() != 0 {
		t.Fatalf("dirty after FlushAll = %d", sys.DirtyCount())
	}
	if err := sys.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
	sys.Close()
}

func TestUnmapThroughFacade(t *testing.T) {
	sys := newTestSystem(t, Config{})
	m, _ := sys.Map("gone", 1<<20)
	if err := m.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Unmap(m); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write through unmapped handle succeeded")
	}
}

func TestExplicitBatteryProvisioning(t *testing.T) {
	// A battery provisioned for roughly half the region should yield a
	// budget near half the pages.
	const size = 16 << 20
	sysDefault := newTestSystem(t, Config{NVDRAMSize: size})
	sysBig := newTestSystem(t, Config{
		NVDRAMSize: size,
		Battery:    BatteryConfig{CapacityJoules: 1e6, DepthOfDischarge: 0.5},
	})
	if sysBig.DirtyBudget() <= sysDefault.DirtyBudget() {
		t.Fatal("bigger battery did not raise the budget")
	}
	if sysBig.DirtyBudget() > size/4096 {
		t.Fatalf("budget %d exceeds region pages", sysBig.DirtyBudget())
	}
}

// Property at the facade level: arbitrary write workloads against a
// default-provisioned System never exceed the budget, never lose data
// across a power failure, and always recover byte-for-byte.
func TestFacadeDurabilityProperty(t *testing.T) {
	f := func(seed uint64, nOps uint8) bool {
		sys, err := New(Config{NVDRAMSize: 8 << 20})
		if err != nil {
			return false
		}
		m, err := sys.Map("prop", 4<<20)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		shadow := make(map[int64]byte)
		for i := 0; i < int(nOps)%200+1; i++ {
			page := rng.Int63n(4 << 20 / 4096)
			b := byte(rng.Uint64()) | 1
			if err := m.WriteAt([]byte{b}, page*4096); err != nil {
				return false
			}
			shadow[page] = b
			sys.Pump()
			if sys.DirtyCount() > sys.DirtyBudget() {
				return false
			}
			if rng.Intn(5) == 0 {
				sys.AdvanceTime(Duration(sim.Millisecond))
			}
		}
		report := sys.SimulatePowerFailure()
		if !report.Survived || sys.VerifyDurability() != nil {
			return false
		}
		recovered, _, err := sys.Recover()
		if err != nil {
			return false
		}
		m2, err := recovered.Map("prop", 4<<20)
		if err != nil {
			return false
		}
		buf := make([]byte, 1)
		for page, want := range shadow {
			if err := m2.ReadAt(buf, page*4096); err != nil || buf[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSampling(t *testing.T) {
	sys := newTestSystem(t, Config{SampleEvery: Duration(sim.Millisecond)})
	m, _ := sys.Map("s", 1<<20)
	for p := 0; p < 50; p++ {
		if err := m.WriteAt([]byte{1}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		sys.AdvanceTime(Duration(sim.Millisecond))
	}
	samples := sys.Samples()
	if len(samples) < 40 {
		t.Fatalf("got %d samples", len(samples))
	}
	peak := 0
	for _, s := range samples {
		if s.Dirty > peak {
			peak = s.Dirty
		}
	}
	if peak == 0 {
		t.Fatal("sampling saw no dirty pages")
	}
}

func TestFacadeHardwareAssist(t *testing.T) {
	sys := newTestSystem(t, Config{HardwareAssist: true})
	m, _ := sys.Map("hw", 2<<20)
	for p := 0; p < 200; p++ {
		if err := m.WriteAt([]byte{byte(p + 1)}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		sys.Pump()
	}
	if sys.DirtyCount() > sys.DirtyBudget() {
		t.Fatal("budget violated in hardware mode")
	}
	report := sys.SimulatePowerFailure()
	if !report.Survived || sys.VerifyDurability() != nil {
		t.Fatal("hardware mode lost data across power failure")
	}
}

// TestFacadeScrubRepairs: the on-demand scrub detects a silently
// corrupted durable page and repairs it through the budget-enforced
// re-clean path; the integrity report records the episode.
func TestFacadeScrubRepairs(t *testing.T) {
	sys := newTestSystem(t, Config{})
	defer sys.Close()
	m, err := sys.Map("heap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt([]byte("precious bytes"), 4096); err != nil {
		t.Fatal(err)
	}
	sys.Pump()
	sys.FlushAll()
	pages := sys.SSD().DurablePageList()
	if len(pages) == 0 {
		t.Fatal("flush left nothing durable")
	}
	if !sys.SSD().CorruptPage(pages[0], 3, 0x40) {
		t.Fatal("nothing to corrupt")
	}
	if got := sys.Scrub(); got != 1 {
		t.Fatalf("Scrub detected %d corruptions, want 1", got)
	}
	sys.FlushAll() // let the repair's re-clean land
	if err := sys.SSD().VerifyPage(pages[0]); err != nil {
		t.Fatalf("page still corrupt after scrub repair: %v", err)
	}
	rep := sys.IntegrityReport()
	if rep.Scrub.Detections != 1 || rep.Scrub.Repairs != 1 || len(rep.Quarantined) != 0 {
		t.Fatalf("integrity report %+v", rep)
	}
	if rep.VerifyFailures == 0 || rep.VerifyChecks < rep.VerifyFailures {
		t.Fatalf("device verify counters %d/%d", rep.VerifyChecks, rep.VerifyFailures)
	}
	if err := sys.VerifyDurability(); err != nil {
		t.Fatalf("durability after repair: %v", err)
	}
}

// TestFacadeBackgroundScrubberDefaultOn: the scrubber runs by default
// and DisableScrubber turns it off.
func TestFacadeBackgroundScrubberDefaultOn(t *testing.T) {
	sys := newTestSystem(t, Config{})
	if !sys.Scrubber().Running() {
		t.Fatal("background scrubber not running by default")
	}
	sys.Close()
	if sys.Scrubber().Running() {
		t.Fatal("scrubber still running after Close")
	}
	off := newTestSystem(t, Config{DisableScrubber: true})
	defer off.Close()
	if off.Scrubber().Running() {
		t.Fatal("DisableScrubber left the scrubber running")
	}
}

// TestFacadeRecoverQuarantinesCorruption: a corruption the scrubber
// never got to is caught at Recover — the page is quarantined and
// reported, never restored as plausible good bytes.
func TestFacadeRecoverQuarantinesCorruption(t *testing.T) {
	sys := newTestSystem(t, Config{DisableScrubber: true})
	m, err := sys.Map("heap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt(bytes.Repeat([]byte{0x77}, 200), 2*4096); err != nil {
		t.Fatal(err)
	}
	sys.Pump()
	report := sys.SimulatePowerFailure()
	if !report.Survived {
		t.Fatalf("flush did not survive: %+v", report)
	}
	pages := sys.SSD().DurablePageList()
	if len(pages) == 0 {
		t.Fatal("nothing durable after the flush")
	}
	bad := pages[0]
	sys.SSD().CorruptPage(bad, 123, 0xFF) // rot while powered off
	ns, rr, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()
	integ := rr.Integrity
	if integ.PagesVerified != len(pages) {
		t.Fatalf("verified %d pages, want %d", integ.PagesVerified, len(pages))
	}
	if len(integ.Quarantined) != 1 || integ.Quarantined[0] != bad {
		t.Fatalf("integrity report %+v, want page %d quarantined", integ, bad)
	}
	if rr.PagesRestored != len(pages)-1 {
		t.Fatalf("restored %d pages, want %d", rr.PagesRestored, len(pages)-1)
	}
	// The quarantined page must not exist in the recovered system: no
	// durable claim, zeroed NV-DRAM.
	if _, ok := ns.SSD().Durable(bad); ok {
		t.Fatal("corrupt page laundered into the recovered system's durable store")
	}
	if err := ns.VerifyDurability(); err != nil {
		t.Fatalf("recovered system durability: %v", err)
	}
}
